"""Retry, backoff, and circuit breaking for the charged API surface.

A live OSN client that gives up on the first timeout wastes everything it
already paid for; one that retries naively can double-charge or hammer a
failing backend.  :class:`ResilientAPI` threads the needle around
``neighbors_batch``/``degrees_batch``:

* **Exactly-once accounting.**  The wrapper never touches the counters —
  it re-invokes the wrapped API, whose §2.4 cache makes retries naturally
  idempotent.  A failed attempt either charged nothing (the fault fired
  before the invocation) or charged-and-cached (the response was lost
  after settling, so the retry is a free cache hit).  Either way a
  failed-then-retried batch charges :class:`~repro.osn.accounting.QueryCounter`
  / :class:`~repro.osn.accounting.TenantLedger` exactly once, and
  ``assert_balanced`` still holds — pinned in ``tests/faults/``.
* **Deterministic waiting.**  Backoff (exponential with seeded jitter)
  advances a virtual clock and accumulates in the *mirror-wait* channel
  (:meth:`ResilientAPI.consume_mirror_wait`), which the async crawler
  drains onto its own :class:`~repro.crawl.clock.FakeClock` — retries
  cost simulated time, never wall time, and every chaos interleaving
  replays bit for bit.
* **Per-tenant circuit breaking.**  After ``circuit_threshold``
  consecutive failures for one tenant, further calls fail fast with
  :class:`~repro.errors.CircuitOpenError` until ``circuit_reset_seconds``
  of clock time pass (half-open trial afterwards) — one tenant's broken
  corner of the network cannot burn every tenant's retry budget.

The policy itself (:class:`RetryPolicy`) is a frozen, JSON-round-trippable
value object, same discipline as :class:`~repro.core.dispatch.EngineConfig`.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, replace
from typing import Any, Dict, Mapping, Optional

from repro.errors import (
    APITimeoutError,
    CircuitOpenError,
    ConfigurationError,
    RateLimitExceededError,
    TransientAPIError,
)
from repro.osn.ratelimit import VirtualClock
from repro.rng import RngLike, ensure_rng

#: Exceptions a retry can fix: the transient family (5xx-style errors and
#: timeouts) plus rate-limit rejections, which carry their own wait.
RETRYABLE_ERRORS = (TransientAPIError, RateLimitExceededError)


def _checked_fields(cls, data: Mapping[str, Any]) -> Dict[str, Any]:
    valid = set(cls.__dataclass_fields__)
    unknown = set(data) - valid
    if unknown:
        raise ConfigurationError(
            f"unknown {cls.__name__} keys: {sorted(unknown)}; valid: {sorted(valid)}"
        )
    return dict(data)


@dataclass(frozen=True)
class RetryPolicy:
    """How :class:`ResilientAPI` waits, retries, and gives up.

    Attributes
    ----------
    max_attempts:
        Total tries per batch (first attempt included); the last failure
        re-raises the underlying error.
    base_backoff / backoff_factor / max_backoff:
        Exponential schedule in simulated seconds: retry *n* waits
        ``min(base_backoff * backoff_factor**(n-1), max_backoff)``.
    jitter:
        Fractional perturbation of each backoff, drawn from the wrapper's
        seeded stream — deterministic per ``(policy, seed, call order)``.
    call_timeout:
        Give up listening after this many simulated seconds of injected
        slowness per call; the attempt counts as a timeout and is
        retried (the late response was still cached, so the retry is
        free).  ``None`` waits out any slowness.
    circuit_threshold:
        Consecutive failures (per tenant) that open the circuit.
    circuit_reset_seconds:
        Clock seconds an open circuit stays closed to traffic before one
        half-open trial call is allowed through.
    """

    max_attempts: int = 4
    base_backoff: float = 1.0
    backoff_factor: float = 2.0
    max_backoff: float = 60.0
    jitter: float = 0.1
    call_timeout: Optional[float] = None
    circuit_threshold: int = 5
    circuit_reset_seconds: float = 300.0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ConfigurationError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )
        if self.base_backoff < 0:
            raise ConfigurationError(
                f"base_backoff must be >= 0, got {self.base_backoff}"
            )
        if self.backoff_factor < 1.0:
            raise ConfigurationError(
                f"backoff_factor must be >= 1, got {self.backoff_factor}"
            )
        if self.max_backoff < self.base_backoff:
            raise ConfigurationError(
                f"max_backoff ({self.max_backoff}) must be >= base_backoff "
                f"({self.base_backoff})"
            )
        if not 0.0 <= self.jitter < 1.0:
            raise ConfigurationError(f"jitter must be in [0, 1), got {self.jitter}")
        if self.call_timeout is not None and self.call_timeout <= 0:
            raise ConfigurationError(
                f"call_timeout must be > 0 or None, got {self.call_timeout}"
            )
        if self.circuit_threshold < 1:
            raise ConfigurationError(
                f"circuit_threshold must be >= 1, got {self.circuit_threshold}"
            )
        if self.circuit_reset_seconds <= 0:
            raise ConfigurationError(
                f"circuit_reset_seconds must be > 0, got "
                f"{self.circuit_reset_seconds}"
            )

    def backoff_for(self, retry_index: int, rng) -> float:
        """Simulated seconds to wait before retry *retry_index* (1-based)."""
        wait = min(
            self.base_backoff * self.backoff_factor ** (retry_index - 1),
            self.max_backoff,
        )
        if self.jitter > 0.0 and wait > 0.0:
            wait *= 1.0 + self.jitter * float(rng.uniform(-1.0, 1.0))
        return wait

    def with_overrides(self, **changes) -> "RetryPolicy":
        """Copy with the given fields replaced (validation re-runs)."""
        return replace(self, **changes)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe dict form."""
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "RetryPolicy":
        """Inverse of :meth:`to_dict`; unknown keys raise."""
        return cls(**_checked_fields(cls, data))


class CircuitBreaker:
    """Consecutive-failure breaker for one tenant, timed on a shared clock.

    Closed → (``threshold`` consecutive failures) → open for
    ``reset_seconds`` → half-open (one trial call) → closed on success,
    re-open on failure.  Success in any state resets the failure run.
    """

    def __init__(self, tenant: str, policy: RetryPolicy) -> None:
        self.tenant = tenant
        self.policy = policy
        self.consecutive_failures = 0
        self.open_until: Optional[float] = None
        self.opens = 0

    def check(self, now: float) -> None:
        """Raise :class:`~repro.errors.CircuitOpenError` while open.

        A call arriving after ``open_until`` passes through as the
        half-open trial; its outcome decides the breaker's next state.
        """
        if self.open_until is not None and now < self.open_until:
            raise CircuitOpenError(self.tenant, self.open_until - now)

    def record_success(self) -> None:
        """A call settled: close the breaker, reset the failure run."""
        self.consecutive_failures = 0
        self.open_until = None

    def record_failure(self, now: float) -> None:
        """A call (or half-open trial) failed; open at the threshold."""
        self.consecutive_failures += 1
        if self.consecutive_failures >= self.policy.circuit_threshold:
            self.open_until = now + self.policy.circuit_reset_seconds
            self.opens += 1


class ResilientAPI:
    """Retry/backoff/circuit-breaker wrapper over a charged batch API.

    Parameters
    ----------
    api:
        The wrapped API — a raw :class:`~repro.osn.api.SocialNetworkAPI`
        or a :class:`~repro.faults.api.FaultyAPI` injecting a chaos plan.
    policy:
        The :class:`RetryPolicy`; defaults are sane for the simulated
        stack.
    clock:
        Timebase for circuit-breaker windows.  ``None`` uses a private
        :class:`~repro.osn.ratelimit.VirtualClock` advanced only by this
        wrapper's own backoffs; passing the campaign's clock (the crawl
        :class:`~repro.crawl.clock.FakeClock`) makes reset windows follow
        campaign time, which is what the serving layer wants.
    seed:
        Root of the backoff-jitter stream (deterministic per call order).
    tenant:
        Initial accounting principal for circuit breaking; the serving
        layer re-points it per crawl driver via :meth:`set_tenant`.
    """

    def __init__(
        self,
        api,
        policy: Optional[RetryPolicy] = None,
        *,
        clock=None,
        seed: RngLike = 0,
        tenant: str = "default",
    ) -> None:
        if not tenant:
            raise ConfigurationError("tenant must be a non-empty string")
        self.api = api
        self.policy = policy if policy is not None else RetryPolicy()
        self.clock = clock if clock is not None else VirtualClock()
        self._rng = ensure_rng(seed)
        self.current_tenant = tenant
        self._breakers: Dict[str, CircuitBreaker] = {}
        self._mirror_wait = 0.0
        #: Attempts that failed with a retryable error (retried or not).
        self.failed_attempts = 0
        #: Retries actually issued after a backoff wait.
        self.retries = 0
        #: Attempts abandoned for exceeding ``call_timeout``.
        self.timeouts = 0

    # ------------------------------------------------------------------
    # Tenancy + breakers
    # ------------------------------------------------------------------
    def set_tenant(self, tenant: str) -> None:
        """Point subsequent calls at *tenant*'s circuit breaker."""
        if not tenant:
            raise ConfigurationError("tenant must be a non-empty string")
        self.current_tenant = tenant

    def breaker(self, tenant: str) -> CircuitBreaker:
        """The (lazily created) breaker guarding *tenant*'s calls."""
        breaker = self._breakers.get(tenant)
        if breaker is None:
            breaker = self._breakers[tenant] = CircuitBreaker(tenant, self.policy)
        return breaker

    @property
    def circuit_opens(self) -> int:
        """Times any tenant's breaker opened over the wrapper's lifetime."""
        return sum(b.opens for b in self._breakers.values())

    # ------------------------------------------------------------------
    # Waiting plumbing
    # ------------------------------------------------------------------
    def _sleep(self, seconds: float) -> None:
        """Spend *seconds* of simulated time (backoff / timeout listening)."""
        if seconds > 0:
            if hasattr(self.clock, "advance") and not hasattr(
                self.clock, "pending_timers"
            ):
                # A VirtualClock advances synchronously; a FakeClock is
                # advanced by whoever mirrors the accumulated wait.
                self.clock.advance(seconds)
            self._mirror_wait += seconds

    def _drain_inner_wait(self) -> float:
        """Injected slowness the inner wrapper accrued during one attempt."""
        drain = getattr(self.api, "consume_mirror_wait", None)
        return float(drain()) if drain is not None else 0.0

    def consume_mirror_wait(self) -> float:
        """Simulated seconds of waiting accrued since the last drain.

        Includes backoff sleeps, rate-limit ``retry_after`` waits, and
        any slow-response latency the inner wrapper reported.  The async
        crawler drains this after each settled batch and sleeps the
        amount on its own clock — retries slow the campaign down instead
        of happening for free.
        """
        waited, self._mirror_wait = self._mirror_wait, 0.0
        return waited

    # ------------------------------------------------------------------
    # The resilient batch surface
    # ------------------------------------------------------------------
    def _call(self, fn, nodes):
        breaker = self.breaker(self.current_tenant)
        breaker.check(self.clock.now)
        attempt = 1
        while True:
            try:
                result = fn(nodes)
            except RETRYABLE_ERRORS as error:
                self._mirror_wait += self._drain_inner_wait()
                self.failed_attempts += 1
                breaker.record_failure(self.clock.now)
                if attempt >= self.policy.max_attempts:
                    raise
                if breaker.open_until is not None:
                    # The run of failures just opened the circuit: stop
                    # retrying now; callers see the underlying error and
                    # subsequent calls fail fast until the reset window.
                    raise
                if isinstance(error, RateLimitExceededError) and error.retry_after > 0:
                    wait = error.retry_after
                else:
                    wait = self.policy.backoff_for(attempt, self._rng)
                self._sleep(wait)
                self.retries += 1
                attempt += 1
                continue
            waited = self._drain_inner_wait()
            timeout = self.policy.call_timeout
            if timeout is not None and waited > timeout:
                # We stopped listening at the timeout; the response that
                # eventually arrived is already cached, so the retry is a
                # free lookup — time was lost, money was not.
                self._sleep(timeout)
                self.failed_attempts += 1
                self.timeouts += 1
                breaker.record_failure(self.clock.now)
                if attempt >= self.policy.max_attempts or breaker.open_until is not None:
                    raise APITimeoutError(
                        f"call exceeded per-call timeout of {timeout} simulated "
                        f"seconds (injected slowness {waited:.2f}s)"
                    )
                self._sleep(self.policy.backoff_for(attempt, self._rng))
                self.retries += 1
                attempt += 1
                continue
            self._mirror_wait += waited
            breaker.record_success()
            return result

    def neighbors_batch(self, nodes):
        """Resilient :meth:`~repro.osn.api.SocialNetworkAPI.neighbors_batch`."""
        return self._call(self.api.neighbors_batch, nodes)

    def degrees_batch(self, nodes):
        """Resilient :meth:`~repro.osn.api.SocialNetworkAPI.degrees_batch`."""
        return self._call(self.api.degrees_batch, nodes)

    # ------------------------------------------------------------------
    # Pure delegation (accounting stays in the wrapped API)
    # ------------------------------------------------------------------
    def neighbors(self, node):
        """Scalar pass-through (the policy covers the batch grain)."""
        return self.api.neighbors(node)

    def degree(self, node) -> int:
        """Scalar pass-through."""
        return self.api.degree(node)

    def attribute(self, node, name: str):
        """Scalar pass-through."""
        return self.api.attribute(node, name)

    def has_node(self, node) -> bool:
        """Free existence check, delegated."""
        return self.api.has_node(node)

    @property
    def discovered(self):
        """The wrapped API's shared discovered graph."""
        return self.api.discovered

    @property
    def counter(self):
        """The wrapped API's query counter."""
        return self.api.counter

    @property
    def budget(self):
        """The wrapped API's query budget."""
        return self.api.budget

    @property
    def rate_limiter(self):
        """The wrapped API's token bucket (or None)."""
        return self.api.rate_limiter

    @property
    def cacheable(self) -> bool:
        """Whether the wrapped API's responses are call-stable."""
        return self.api.cacheable

    @property
    def query_cost(self) -> int:
        """The wrapped API's unique-node cost."""
        return self.api.query_cost

    @property
    def raw_calls(self) -> int:
        """The wrapped API's raw invocation count."""
        return self.api.raw_calls

    def snapshot(self):
        """The wrapped counter's snapshot (phase attribution)."""
        return self.api.snapshot()

    def __repr__(self) -> str:
        return (
            f"ResilientAPI(tenant={self.current_tenant!r}, "
            f"retries={self.retries}, failed_attempts={self.failed_attempts}, "
            f"circuit_opens={self.circuit_opens})"
        )
