"""Simulated online-social-network access interface.

The paper's setting (§2.1): a third party can only issue *local neighborhood
queries* — give the OSN a user id, get back that user's neighbor list — and
every query counts against a rate-limited budget.  This package simulates
that interface over a hidden :class:`~repro.graphs.Graph`:

* :class:`SocialNetworkAPI` — neighbor/attribute queries with accounting;
* :class:`QueryBudget` / :class:`QueryCounter` — the cost model (§2.4:
  "query cost = number of nodes accessed"; unique nodes by default);
* neighbor-access **restrictions** of the three types of §6.3.1;
* a token-bucket **rate limiter** on a virtual clock (Twitter's
  15-requests-per-15-minutes example from §1.1);
* a **resilience** layer — :class:`RetryPolicy` backoff with per-tenant
  circuit breaking (:class:`ResilientAPI`) that keeps the §2.4 accounting
  exactly-once across retried failures.
"""

from repro.osn.accounting import (
    QueryBudget,
    QueryCostDelta,
    QueryCounter,
    QueryCounterSnapshot,
    QueryLog,
    TenantLedger,
)
from repro.osn.api import SocialNetworkAPI
from repro.osn.ratelimit import TokenBucketRateLimiter, VirtualClock
from repro.osn.resilience import (
    RETRYABLE_ERRORS,
    CircuitBreaker,
    ResilientAPI,
    RetryPolicy,
)
from repro.osn.restrictions import (
    FixedRandomKRestriction,
    NeighborRestriction,
    RandomKRestriction,
    TruncatedKRestriction,
    mark_recapture_degree,
    mutual_neighbors,
)

__all__ = [
    "SocialNetworkAPI",
    "QueryBudget",
    "QueryCounter",
    "QueryCounterSnapshot",
    "QueryCostDelta",
    "QueryLog",
    "TenantLedger",
    "NeighborRestriction",
    "RandomKRestriction",
    "FixedRandomKRestriction",
    "TruncatedKRestriction",
    "mutual_neighbors",
    "mark_recapture_degree",
    "TokenBucketRateLimiter",
    "VirtualClock",
    "RETRYABLE_ERRORS",
    "CircuitBreaker",
    "ResilientAPI",
    "RetryPolicy",
]
