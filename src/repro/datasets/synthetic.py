"""Synthetic Barabási–Albert datasets (Figures 11–12, Table 1).

Figure 11 sweeps BA graphs of 10k–20k nodes with m = 5; the exact-bias
experiment uses a 1000-node, 6951-edge scale-free graph — which is exactly
BA(n=1000, m=7) since ``m·(n-m) = 6951``.
"""

from __future__ import annotations

from repro.datasets.attributes import attach_topological_attributes
from repro.datasets.surrogates import SocialDataset, _finalize
from repro.graphs.generators import barabasi_albert_graph
from repro.rng import RngLike, ensure_rng, spawn


def ba_synthetic(nodes: int = 2000, m: int = 5, seed: RngLike = None) -> SocialDataset:
    """Figure 11's workload: BA graph with the ``degree`` aggregate.

    The paper evaluates sizes 10,000–20,000; pass those as *nodes* to run
    paper-scale, or smaller for quick iterations.
    """
    rng = ensure_rng(seed)
    graph_rng, topo_rng = spawn(rng, 2)
    graph = barabasi_albert_graph(nodes, m, seed=graph_rng).relabeled()
    graph.name = f"ba-synthetic-{nodes}-{m}"
    attach_topological_attributes(graph, seed=topo_rng, with_paths=False)
    return _finalize(
        "ba_synthetic",
        graph,
        ["degree"],
        f"synthetic scale-free graph of §7.1 (Barabasi-Albert, n={nodes}, m={m})",
    )


def exact_bias_graph(seed: RngLike = 1000) -> SocialDataset:
    """Table 1 / Figure 12's workload: BA(1000, 7) — 1000 nodes, 6951 edges.

    The edge count matches the paper's description exactly (see module
    docstring); the seed default keeps the workload reproducible.
    """
    dataset = ba_synthetic(1000, m=7, seed=seed)
    return SocialDataset(
        name="exact_bias",
        graph=dataset.graph,
        aggregates=dataset.aggregates,
        paper_reference=(
            "small scale-free network of 1000 nodes and 6951 edges "
            "(Table 1, Figure 12)"
        ),
    )
