"""Name-based dataset registry for the CLI and experiment harness."""

from __future__ import annotations

from typing import Callable, Dict

from repro.datasets.surrogates import (
    SocialDataset,
    google_plus_surrogate,
    twitter_surrogate,
    yelp_surrogate,
)
from repro.datasets.synthetic import ba_synthetic, exact_bias_graph
from repro.errors import ConfigurationError
from repro.rng import RngLike

DATASET_BUILDERS: Dict[str, Callable[..., SocialDataset]] = {
    "google_plus": google_plus_surrogate,
    "yelp": yelp_surrogate,
    "twitter": twitter_surrogate,
    "ba_synthetic": ba_synthetic,
    "exact_bias": exact_bias_graph,
}


def build_dataset(name: str, seed: RngLike = None, **kwargs) -> SocialDataset:
    """Build a dataset by registry name.

    Raises
    ------
    ConfigurationError
        For unknown names; the message lists the valid ones.
    """
    builder = DATASET_BUILDERS.get(name)
    if builder is None:
        raise ConfigurationError(
            f"unknown dataset {name!r}; valid: " + ", ".join(sorted(DATASET_BUILDERS))
        )
    return builder(seed=seed, **kwargs)
