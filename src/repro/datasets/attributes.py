"""Synthetic node-attribute models.

Attributes mimic the profile fields the paper aggregates over:

* **self-description length** (Google Plus): word counts are heavy-tailed
  and mildly degree-correlated (prolific users tend to be connected), so we
  draw log-normal values with a mean shifted by log-degree;
* **stars** (Yelp): review star averages cluster around ~3.7 with mild
  degree correlation, clipped to the 1..5 scale;
* **topological attributes**: each node's degree, local clustering
  coefficient and mean shortest-path length are precomputed on the hidden
  graph and exposed as profile fields, mirroring how the paper treats them
  as node-associated measures (§7.1).
"""

from __future__ import annotations

import numpy as np

from repro.graphs.graph import Graph
from repro.graphs.properties import local_clustering, mean_shortest_path_lengths
from repro.rng import RngLike, ensure_rng


def attach_description_lengths(
    graph: Graph,
    seed: RngLike = None,
    base_words: float = 12.0,
    degree_elasticity: float = 0.25,
    sigma: float = 0.6,
) -> None:
    """Attach a ``description_length`` attribute (words, >= 0).

    ``length = base · degree^elasticity · exp(σZ)`` rounded to whole words;
    ~10% of users leave the field empty (length 0), as observed on real
    profiles.
    """
    rng = ensure_rng(seed)
    values = {}
    for node in graph.nodes():
        if rng.random() < 0.1:
            values[node] = 0.0
            continue
        degree = max(1, graph.degree(node))
        noise = float(rng.normal(0.0, sigma))
        words = base_words * degree**degree_elasticity * np.exp(noise)
        values[node] = float(round(words))
    graph.set_attribute("description_length", values)


def attach_stars(
    graph: Graph,
    seed: RngLike = None,
    center: float = 3.7,
    degree_slope: float = 0.15,
    sigma: float = 0.7,
) -> None:
    """Attach a Yelp-style ``stars`` attribute in [1.0, 5.0].

    Mildly increasing in log-degree (active reviewers skew positive),
    normal noise, clipped to the scale, rounded to halves like Yelp.
    """
    rng = ensure_rng(seed)
    degrees = graph.degrees()
    mean_log_degree = float(
        np.mean([np.log(max(1, d)) for d in degrees.values()])
    )
    values = {}
    for node in graph.nodes():
        shift = degree_slope * (np.log(max(1, degrees[node])) - mean_log_degree)
        raw = center + shift + float(rng.normal(0.0, sigma))
        clipped = min(5.0, max(1.0, raw))
        values[node] = round(clipped * 2.0) / 2.0
    graph.set_attribute("stars", values)


def attach_topological_attributes(
    graph: Graph,
    seed: RngLike = None,
    landmark_count: int = 32,
    with_paths: bool = True,
) -> None:
    """Attach ``degree``, ``clustering`` and (optionally) ``avg_path``.

    ``degree`` as an explicit profile attribute mirrors follower counts
    shown on real profiles — under neighbor-access restrictions the profile
    value remains the *true* degree while ``api.degree()`` sees only the
    restricted list, which is exactly the discrepancy §6.3.1 discusses.
    """
    degrees = {node: float(graph.degree(node)) for node in graph.nodes()}
    graph.set_attribute("degree", degrees)
    clustering = {node: local_clustering(graph, node) for node in graph.nodes()}
    graph.set_attribute("clustering", clustering)
    if with_paths:
        paths = mean_shortest_path_lengths(
            graph, landmark_count=landmark_count, seed=seed
        )
        graph.set_attribute("avg_path", {n: float(v) for n, v in paths.items()})
