"""Dataset surrogates for the paper's evaluation graphs.

No network access is available (and the paper's Google Plus crawl was never
published), so each evaluation dataset is replaced by a synthetic surrogate
whose *shape* matches what the paper's comparisons depend on: heavy-tailed
degrees, small diameter, clustering, and node attributes correlated with
topology.  DESIGN.md's substitution table records the mapping.

A fun exactness note: the paper's "small scale-free network of size 1000
nodes and 6951 edges" (Table 1 / Figure 12) is exactly a Barabási–Albert
graph with m = 7 — ``m·(n - m) = 7 · 993 = 6951`` — so
:func:`exact_bias_graph` reproduces that workload precisely.
"""

from repro.datasets.attributes import (
    attach_stars,
    attach_description_lengths,
    attach_topological_attributes,
)
from repro.datasets.surrogates import (
    SocialDataset,
    google_plus_surrogate,
    twitter_surrogate,
    yelp_surrogate,
)
from repro.datasets.synthetic import ba_synthetic, exact_bias_graph
from repro.datasets.registry import DATASET_BUILDERS, build_dataset

__all__ = [
    "SocialDataset",
    "google_plus_surrogate",
    "yelp_surrogate",
    "twitter_surrogate",
    "ba_synthetic",
    "exact_bias_graph",
    "attach_stars",
    "attach_description_lengths",
    "attach_topological_attributes",
    "DATASET_BUILDERS",
    "build_dataset",
]
