"""Surrogates for the paper's three real-world evaluation graphs.

Each builder returns a :class:`SocialDataset`: the hidden graph (with
attributes), the exact aggregate ground truths, and the list of aggregates
the corresponding paper figure evaluates.  Default sizes are scaled down
from the paper's crawls (16k–120k nodes) to laptop-friendly sizes; the
degree *shape*, clustering, and attribute-topology correlations — the
things the SRW-vs-WE comparison is sensitive to — are preserved.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.datasets.attributes import (
    attach_description_lengths,
    attach_stars,
    attach_topological_attributes,
)
from repro.graphs.generators import (
    barabasi_albert_graph,
    directed_preferential_graph,
)
from repro.graphs.graph import Graph
from repro.graphs.properties import largest_connected_component
from repro.rng import RngLike, ensure_rng, spawn


@dataclass(frozen=True)
class SocialDataset:
    """A hidden graph plus the ground truth experiments score against.

    Attributes
    ----------
    name:
        Dataset label (``google_plus`` / ``yelp`` / ``twitter`` / ...).
    graph:
        The hidden graph; samplers access it only through an API.
    aggregates:
        ``{attribute name: exact population mean}`` for every aggregate the
        paper evaluates on this dataset.
    paper_reference:
        What the surrogate stands in for (documentation).
    """

    name: str
    graph: Graph
    aggregates: Dict[str, float] = field(default_factory=dict)
    paper_reference: str = ""

    @property
    def aggregate_names(self) -> List[str]:
        """The aggregates to evaluate, in stable order."""
        return sorted(self.aggregates)


def _finalize(
    name: str,
    graph: Graph,
    aggregate_names: List[str],
    paper_reference: str,
) -> SocialDataset:
    aggregates = {attr: graph.attribute_mean(attr) for attr in aggregate_names}
    return SocialDataset(
        name=name,
        graph=graph,
        aggregates=aggregates,
        paper_reference=paper_reference,
    )


def google_plus_surrogate(
    nodes: int = 2000, m: int = 25, seed: RngLike = None
) -> SocialDataset:
    """Google Plus stand-in: dense scale-free graph with profile text.

    The paper's crawl had 16,405 users, 4.5M edges (average degree 560).
    The surrogate keeps the density character (average degree ≈ 2m ≈ 50 at
    the scaled node count) and the degree-correlated ``description_length``
    attribute the paper aggregates alongside degree (Figures 6, 9, 10).
    """
    rng = ensure_rng(seed)
    graph_rng, attr_rng, topo_rng = spawn(rng, 3)
    graph = barabasi_albert_graph(nodes, m, seed=graph_rng).relabeled()
    graph.name = f"google-plus-surrogate-{nodes}"
    attach_description_lengths(graph, seed=attr_rng)
    attach_topological_attributes(graph, seed=topo_rng, with_paths=False)
    return _finalize(
        "google_plus",
        graph,
        ["degree", "description_length"],
        "Google Plus crawl of §7.1 (16,405 users / 4.5M edges)",
    )


def yelp_surrogate(
    nodes: int = 4000, m: int = 8, closure_rounds: int = 2, seed: RngLike = None
) -> SocialDataset:
    """Yelp stand-in: clustered scale-free co-review graph with stars.

    The paper's Yelp graph connects users that reviewed a shared business —
    a mechanism that produces strong triadic closure.  The surrogate starts
    scale-free and adds closure edges (two random neighbors of a node get
    connected), yielding realistic clustering, then attaches ``stars`` and
    the topological attributes of Figure 7 (degree, shortest-path length,
    local clustering coefficient).
    """
    rng = ensure_rng(seed)
    graph_rng, closure_rng, attr_rng, topo_rng = spawn(rng, 4)
    graph = barabasi_albert_graph(nodes, m, seed=graph_rng).relabeled()
    # Triadic closure: co-review neighborhoods are cliques-ish.
    node_ids = graph.nodes()
    for _ in range(closure_rounds * nodes):
        center = node_ids[int(closure_rng.integers(0, len(node_ids)))]
        neighbors = graph.neighbors(center)
        if len(neighbors) < 2:
            continue
        picks = closure_rng.choice(len(neighbors), size=2, replace=False)
        u, v = neighbors[int(picks[0])], neighbors[int(picks[1])]
        if u != v and not graph.has_edge(u, v):
            graph.add_edge(u, v)
    graph = largest_connected_component(graph)
    graph.name = f"yelp-surrogate-{nodes}"
    attach_stars(graph, seed=attr_rng)
    attach_topological_attributes(graph, seed=topo_rng, with_paths=True)
    return _finalize(
        "yelp",
        graph,
        ["degree", "stars", "avg_path", "clustering"],
        "Yelp academic dataset user-user LCC of §7.1 (~120k users / 954k edges)",
    )


def twitter_surrogate(
    nodes: int = 3000, m: int = 10, seed: RngLike = None
) -> SocialDataset:
    """Twitter stand-in: directed preferential graph reduced to mutual edges.

    The paper (§2.1) reduces Twitter to an undirected graph keeping only
    reciprocal follows; the surrogate generates a directed
    preferential-attachment network, retains each user's in/out degree as
    profile attributes (follower/followee counts, Figure 8's aggregates),
    then applies the same mutual-edge reduction and keeps the LCC.
    """
    rng = ensure_rng(seed)
    edges_rng, topo_rng = spawn(rng, 2)
    directed = directed_preferential_graph(nodes, m, seed=edges_rng)
    out_degree = {node: 0.0 for node in range(nodes)}
    in_degree = {node: 0.0 for node in range(nodes)}
    directed_set = set(directed)
    for source, target in directed_set:
        out_degree[source] += 1.0
        in_degree[target] += 1.0
    mutual = Graph(name="twitter-mutual")
    mutual.add_nodes_from(range(nodes))
    for source, target in directed_set:
        if source < target and (target, source) in directed_set:
            mutual.add_edge(source, target)
    mutual.set_attribute("in_degree", in_degree)
    mutual.set_attribute("out_degree", out_degree)
    graph = largest_connected_component(mutual)
    graph.name = f"twitter-surrogate-{nodes}"
    attach_topological_attributes(graph, seed=topo_rng, with_paths=True)
    return _finalize(
        "twitter",
        graph,
        ["in_degree", "out_degree", "avg_path", "clustering"],
        "SNAP Twitter ego-network graph of §7.1 (~80k nodes / 1.7M edges)",
    )
