"""Deterministic time for asynchronous crawling: FakeClock + event-loop driver.

The async crawl pipeline must be testable *bit for bit*: every interleaving
a test asserts has to reproduce exactly, run after run, machine after
machine.  Real wall-clock time (``asyncio.sleep``) breaks that instantly,
so the crawl stack never touches it.  Instead:

* :class:`FakeClock` is a virtual-time timer wheel for coroutines.
  ``await clock.sleep(dt)`` parks the caller on a future keyed by
  ``(deadline, sequence)`` — the sequence number makes simultaneous
  deadlines fire in registration order, so even ties are deterministic.
  Nobody advances time implicitly; the driver does it explicitly, and only
  when *every* task is blocked.
* :func:`drive` runs one coroutine to completion on a fresh event loop.
  Whenever the loop quiesces (no runnable callbacks remain), it jumps the
  clock to the earliest pending deadline and wakes those sleepers.  The
  result is a discrete-event simulation: scheduling order depends only on
  task creation order and scripted deadlines, never on host load.

Determinism rests on two properties worth stating explicitly: asyncio's
ready queue is FIFO (callbacks run in the order they were scheduled), and
this stack introduces no real I/O, threads, or wall-clock timers — the
only suspension points are :meth:`FakeClock.sleep` and queue/future waits
resolved by other tasks.  Anything built on those primitives replays
identically for a fixed program order.

:func:`resolve_latency` normalizes the latency scripts tests and
benchmarks use: a number (constant per batch), a sequence (cycled by batch
index), a callable ``(batch_index, nodes) -> seconds``, or ``None`` (no
latency at all).
"""

from __future__ import annotations

import asyncio
import heapq
from numbers import Real
from typing import Awaitable, Callable, List, Sequence, Tuple, TypeVar, Union

from repro.errors import ConfigurationError

T = TypeVar("T")

#: A latency model: simulated seconds for one fetch batch.
LatencyFn = Callable[[int, Sequence[int]], float]
LatencyLike = Union[None, float, Sequence[float], LatencyFn]

#: Yield rounds used when the loop's ready queue cannot be introspected.
_FALLBACK_YIELDS = 64


class FakeClock:
    """Virtual time for coroutines: sleeps park on a deterministic timer heap.

    The clock never advances on its own.  :func:`drive` (or any caller)
    advances it via :meth:`advance`, which jumps to the earliest pending
    deadline and wakes everything due — simultaneous deadlines wake in the
    order their sleeps were registered.
    """

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)
        self._timers: List[Tuple[float, int, asyncio.Future]] = []
        self._sequence = 0

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    async def sleep(self, delay: float) -> None:
        """Suspend the calling task for *delay* simulated seconds.

        A zero delay still yields once (so a zero-latency fetch is a
        scheduling point, same as a nonzero one — interleavings stay
        comparable across latency scripts).  Negative delays are rejected.
        """
        if delay < 0:
            raise ConfigurationError(f"cannot sleep a negative delay: {delay}")
        if delay == 0:
            await asyncio.sleep(0)
            return
        future = asyncio.get_running_loop().create_future()
        heapq.heappush(self._timers, (self._now + delay, self._sequence, future))
        self._sequence += 1
        await future

    def _prune(self) -> None:
        """Drop timers whose sleeper was cancelled (future already done)."""
        while self._timers and self._timers[0][2].done():
            heapq.heappop(self._timers)

    @property
    def pending_timers(self) -> int:
        """Number of live sleepers waiting on this clock."""
        self._prune()
        return len(self._timers)

    def advance(self) -> bool:
        """Jump to the earliest pending deadline and wake everything due.

        Returns False (and leaves time unchanged) when no live timer is
        pending — the driver's signal that a still-blocked program is
        deadlocked, not merely waiting.
        """
        self._prune()
        if not self._timers:
            return False
        self._now = max(self._now, self._timers[0][0])
        while self._timers and self._timers[0][0] <= self._now:
            _, _, future = heapq.heappop(self._timers)
            if not future.done():
                future.set_result(None)
        return True

    def advance_to(self, instant: float) -> None:
        """Jump straight to *instant* (≥ now), waking any timer due by then.

        The checkpoint-restore hook: a resumed campaign re-anchors a fresh
        clock at the snapshot's reading so batch-indexed latency scripts,
        rate-limiter mirrors, and fault-plan time windows continue from
        the same simulated instant.  Rewinding is refused — virtual time
        is monotone like real time.
        """
        instant = float(instant)
        if instant < self._now:
            raise ConfigurationError(
                f"cannot rewind the clock from {self._now} to {instant}"
            )
        self._now = instant
        self._prune()
        while self._timers and self._timers[0][0] <= self._now:
            _, _, future = heapq.heappop(self._timers)
            if not future.done():
                future.set_result(None)

    def __repr__(self) -> str:
        return f"FakeClock(now={self._now}, pending={self.pending_timers})"


async def _settle(loop: asyncio.AbstractEventLoop) -> None:
    """Yield until every other task is blocked (the loop is quiescent).

    Reads the loop's ready queue when available — after our own yield
    returns with the queue empty, no other callback is runnable.  On loops
    without that attribute, fall back to a fixed number of yields, which
    is still deterministic (just potentially wasteful).
    """
    ready = getattr(loop, "_ready", None)
    if ready is None:  # pragma: no cover - non-CPython event loop
        for _ in range(_FALLBACK_YIELDS):
            await asyncio.sleep(0)
        return
    while True:
        await asyncio.sleep(0)
        if not ready:
            return


def drive(clock: FakeClock, coro: Awaitable[T]) -> T:
    """Run *coro* to completion, advancing *clock* whenever all tasks block.

    The deterministic event-loop driver of the crawl test harness: a fresh
    event loop, no real timers, and explicit virtual-time advancement.
    Raises :class:`ConfigurationError` if the program blocks with no
    pending timer (a genuine deadlock — nothing could ever wake it).
    """

    async def _main() -> T:
        loop = asyncio.get_running_loop()
        task = asyncio.ensure_future(coro)
        while not task.done():
            await _settle(loop)
            if task.done():
                break
            if not clock.advance():
                task.cancel()
                await asyncio.gather(task, return_exceptions=True)
                raise ConfigurationError(
                    "deadlock under FakeClock: every task is blocked and no "
                    "timer is pending"
                )
        return await task

    return asyncio.run(_main())


def resolve_latency(latency: LatencyLike) -> LatencyFn:
    """Normalize a latency spec into a ``(batch_index, nodes) -> seconds`` fn.

    ``None`` → always 0; a number → that constant; a sequence → cycled by
    batch index (the "scripted latency" the deterministic tests use); a
    callable → returned as-is.
    """
    if latency is None:
        return lambda index, nodes: 0.0
    if isinstance(latency, Real):
        value = float(latency)
        if value < 0:
            raise ConfigurationError(f"latency must be >= 0, got {value}")
        return lambda index, nodes: value
    if callable(latency):
        return latency
    script = [float(v) for v in latency]
    if not script:
        raise ConfigurationError("latency script must not be empty")
    if any(v < 0 for v in script):
        raise ConfigurationError(f"latency script must be >= 0, got {script}")
    return lambda index, nodes: script[index % len(script)]
