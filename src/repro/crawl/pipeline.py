"""Crawl→compact→walk pipeline: estimates that refine as the graph grows.

:class:`CrawlWalkPipeline` is the front end over the three async-crawl
pieces: an :class:`~repro.crawl.crawler.AsyncCrawler` fetches the next
chunk of the hidden graph concurrently, a
:class:`~repro.crawl.publisher.TopologyPublisher` compacts the discovered
rows into a fresh shared-memory slab, and a swap-capable
:class:`~repro.walks.parallel.ShardedWalkEngine` fans a walk round out
over it — one *epoch*.  Each epoch's walks run over strictly more of the
network than the last, so the per-epoch estimate converges to the
full-graph value as coverage completes, while the crawler (not the
walkers) absorbs all the network latency — "walk, not wait" applied to
the crawl phase itself.

**What is estimated.**  Each epoch runs ``walks_per_epoch`` walks of
``steps_per_walk`` transitions from the crawl start over the published
(fetched-induced) topology and forms the importance-weighted mean

.. math:: \\hat\\mu = \\frac{\\sum_i f(v_i)/\\tilde q(v_i)}
                       {\\sum_i 1/\\tilde q(v_i)}

where :math:`\\tilde q` is the walk design's unnormalized stationary
weight *on the published graph* (degree for SRW, 1 for MHRW-family) and
*f* defaults to the node's **true** visible degree read from the
discovered store — every visited node's full row has been paid for, so
this costs no queries.  With the default *f* the estimates track the
hidden graph's average degree; pass ``attribute=`` for any other
per-node function of already-discovered data.

**Determinism.**  Everything stochastic flows from one seed (crawl
interleavings from the scripted latency under the
:class:`~repro.crawl.clock.FakeClock`; walks from the engine's
``(seed, n_workers)`` contract), so a pipeline run replays bit for bit.

**Query accounting** is untouched by all of this: only the crawler
touches the API, through the ordinary charged batch path; walks run over
already-paid-for topology for free.  Budget exhaustion mid-crawl ends the
crawl cleanly — the epoch still compacts and walks whatever settled, and
the result is flagged :attr:`PipelineResult.budget_exhausted`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional

import numpy as np

from repro.core.config import CrawlPipelineConfig
from repro.crawl.clock import FakeClock, LatencyLike
from repro.crawl.crawler import AsyncCrawler
from repro.crawl.publisher import TopologyPublisher
from repro.errors import ConfigurationError, QueryBudgetExceededError
from repro.graphs.csr import CSRGraph
from repro.rng import RngLike, ensure_rng
from repro.walks.batch import target_weights_batch
from repro.walks.parallel import ShardedWalkEngine
from repro.walks.transitions import Node, SimpleRandomWalk, TransitionDesign


@dataclass(frozen=True)
class CrawlEpochRecord:
    """One crawl→compact→walk epoch's outcome."""

    epoch: int
    new_rows: int
    crawl_seconds: float
    fetched_nodes: int
    member_nodes: int
    walk_nodes: int
    walk_edges: int
    walks: int
    steps: int
    estimate: float
    query_cost: int
    raw_calls: int
    clock_seconds: float


@dataclass
class PipelineResult:
    """Every epoch record plus the run-level outcome."""

    epochs: List[CrawlEpochRecord]
    budget_exhausted: bool

    @property
    def estimates(self) -> np.ndarray:
        """Per-epoch estimates, in epoch order."""
        return np.array([r.estimate for r in self.epochs], dtype=np.float64)

    @property
    def final_estimate(self) -> float:
        """The last (widest-coverage) epoch's estimate."""
        if not self.epochs:
            return float("nan")
        return self.epochs[-1].estimate

    @property
    def query_cost(self) -> int:
        """Unique-node query cost of the whole campaign."""
        if not self.epochs:
            return 0
        return self.epochs[-1].query_cost

    @property
    def simulated_seconds(self) -> float:
        """Total simulated time (latency + mirrored rate waits)."""
        if not self.epochs:
            return 0.0
        return self.epochs[-1].clock_seconds


class CrawlWalkPipeline:
    """Interleave concurrent crawling with sharded walk rounds.

    Parameters
    ----------
    api:
        Charged :class:`~repro.osn.api.SocialNetworkAPI` over the hidden
        graph.
    start:
        Crawl origin and every walk's starting node.
    design:
        Walk transition design (batch-kernel designs only); SRW default.
    config:
        :class:`~repro.core.config.CrawlPipelineConfig` knobs.
    n_workers / mp_context:
        Sharded walk engine shape (see
        :class:`~repro.walks.parallel.ShardedWalkEngine`).
    clock / latency:
        Simulated-time plumbing handed to the crawler — see
        :class:`~repro.crawl.clock.FakeClock` and
        :func:`~repro.crawl.clock.resolve_latency`.
    attribute:
        Optional ``node ids -> float values`` function for the estimand;
        defaults to true discovered degrees (average-degree estimation).
    seed:
        One seed for the whole run's randomness.
    slab_storage / slab_dir:
        Backend for published topology slabs — ``"shm"`` (default) or
        ``"file"`` under *slab_dir* (see :mod:`repro.graphs.shm`).

    Use as a context manager (the engine holds processes and the
    publisher a slab until :meth:`close`).
    """

    def __init__(
        self,
        api,
        start: Node,
        *,
        design: Optional[TransitionDesign] = None,
        config: Optional[CrawlPipelineConfig] = None,
        n_workers: Optional[int] = None,
        mp_context: str = "spawn",
        clock: Optional[FakeClock] = None,
        latency: LatencyLike = None,
        attribute: Optional[Callable[[np.ndarray], np.ndarray]] = None,
        seed: RngLike = None,
        slab_storage: str = "shm",
        slab_dir: Optional[str] = None,
    ) -> None:
        self.api = api
        self.start = start
        self.design = design if design is not None else SimpleRandomWalk()
        self.config = config if config is not None else CrawlPipelineConfig()
        self.clock = clock if clock is not None else FakeClock()
        self.crawler = AsyncCrawler(
            api,
            start,
            concurrency=self.config.concurrency,
            batch_size=self.config.batch_size,
            max_depth=self.config.max_depth,
            clock=self.clock,
            latency=latency,
        )
        self.publisher = TopologyPublisher(
            api.discovered,
            fetched_only=True,
            storage=slab_storage,
            slab_dir=slab_dir,
        )
        self._n_workers = n_workers
        self._mp_context = mp_context
        self._engine: Optional[ShardedWalkEngine] = None
        self._attribute = attribute
        self._rng = ensure_rng(seed)
        self.epochs: List[CrawlEpochRecord] = []
        self._budget_exhausted = False
        self._closed = False

    # ------------------------------------------------------------------
    # Epochs
    # ------------------------------------------------------------------
    @property
    def engine(self) -> Optional[ShardedWalkEngine]:
        """The walk engine (spawned lazily at the first epoch)."""
        return self._engine

    def _values_of(self, nodes: np.ndarray) -> np.ndarray:
        if self._attribute is not None:
            return np.asarray(self._attribute(nodes), dtype=np.float64)
        # True visible degrees: every visited node's row is paid for, so
        # this is a free discovered-store gather, not an API call.
        return self.api.discovered.degrees_of(nodes).astype(np.float64)

    def _walk_estimate(self, graph: CSRGraph) -> float:
        """One walk round over *graph*; NaN when the start is not walkable."""
        cfg = self.config
        if self.start not in graph or graph.degree(self.start) == 0:
            return float("nan")
        starts = np.full(cfg.walks_per_epoch, self.start, dtype=np.int64)
        result = self._engine.run_walk_batch(
            self.design, starts, cfg.steps_per_walk, seed=self._rng
        )
        nodes = result.paths[:, 1:].ravel()
        weights = 1.0 / target_weights_batch(graph, self.design, nodes)
        values = self._values_of(nodes)
        return float(np.sum(values * weights) / np.sum(weights))

    def run_epoch(self) -> Optional[CrawlEpochRecord]:
        """One crawl→compact→walk epoch; None once nothing new remains.

        Returns ``None`` (without walking) when the crawl has finished and
        the current topology was already walked — the pipeline's natural
        stopping condition.
        """
        if self._closed:
            raise ConfigurationError("pipeline is closed")
        cfg = self.config
        new_rows = 0
        crawl_seconds = 0.0
        if not self.crawler.finished:
            rows_before = self.api.discovered.fetched_count
            clock_before = self.clock.now
            try:
                stats = self.crawler.crawl(cfg.rows_per_epoch)
                new_rows, crawl_seconds = stats.new_rows, stats.seconds
            except QueryBudgetExceededError:
                # The epoch still walks whatever settled before the raise;
                # report that truthfully, not as an empty crawl.  Count
                # from the discovered store, not the crawler's absorbed
                # total — a batch whose fetch settled but whose result
                # was never folded back is still paid for and published.
                self._budget_exhausted = True
                new_rows = self.api.discovered.fetched_count - rows_before
                crawl_seconds = self.clock.now - clock_before
        # Rows settled before a budget raise pass the publisher's growth
        # gate on their own; a raise with nothing settled publishes
        # nothing new and the epoch below is skipped.
        published = self.publisher.publish(force=not self.epochs)
        if published is None and self.epochs:
            return None
        with self.publisher.acquire() as lease:
            if self._engine is None:
                self._engine = ShardedWalkEngine.from_shared(
                    lease.topology.shared,
                    n_workers=self._n_workers,
                    mp_context=self._mp_context,
                )
            else:
                self._engine.update_topology(lease.topology.shared)
            graph = lease.graph
            estimate = self._walk_estimate(graph)
            record = CrawlEpochRecord(
                epoch=lease.epoch,
                new_rows=new_rows,
                crawl_seconds=crawl_seconds,
                fetched_nodes=self.api.discovered.fetched_count,
                member_nodes=self.api.discovered.membership_size,
                walk_nodes=graph.number_of_nodes(),
                walk_edges=graph.number_of_edges(),
                walks=cfg.walks_per_epoch,
                steps=cfg.steps_per_walk,
                estimate=estimate,
                query_cost=self.api.query_cost,
                raw_calls=self.api.raw_calls,
                clock_seconds=self.clock.now,
            )
        self.epochs.append(record)
        return record

    def run(self, max_epochs: Optional[int] = None) -> PipelineResult:
        """Run epochs until the crawl is exhausted (or *max_epochs*)."""
        if max_epochs is not None and max_epochs < 1:
            raise ConfigurationError(f"max_epochs must be >= 1, got {max_epochs}")
        while max_epochs is None or len(self.epochs) < max_epochs:
            if self.run_epoch() is None:
                break
        return self.result()

    def result(self) -> PipelineResult:
        """The run so far as a :class:`PipelineResult`."""
        return PipelineResult(
            epochs=list(self.epochs),
            budget_exhausted=self._budget_exhausted,
        )

    # ------------------------------------------------------------------
    # Lifetime
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Release the engine (pool) then the publisher (segment). Idempotent."""
        if self._closed:
            return
        self._closed = True
        if self._engine is not None:
            self._engine.close()
            self._engine = None
        self.publisher.close()

    def __enter__(self) -> "CrawlWalkPipeline":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:
        return (
            f"CrawlWalkPipeline(start={self.start}, epochs={len(self.epochs)}, "
            f"fetched={self.api.discovered.fetched_count})"
        )
