"""Asynchronous crawl front end: fetch batches concurrently, never idle.

The paper's premise — *walk, not wait* — applies to crawling too: while a
fetch is in flight there is no reason for the frontier to sit still.
:class:`AsyncCrawler` drives :meth:`repro.osn.api.SocialNetworkAPI.neighbors_batch`
with a bounded number of concurrent batches over a BFS frontier.  Every
completed row lands in the API's shared
:class:`~repro.graphs.discovered.DiscoveredGraph` immediately, so the
topology the walkers sample from grows while the network is still
answering — the producer half of the crawl→compact→walk pipeline.

**Accounting is exactly the serial crawl's.**  Each batch settles through
the ordinary charged ``neighbors_batch`` path: one counter charge, one
budget decision, one rate-limiter acquisition per batch, and budget
exhaustion raises *before* the first over-budget invocation, mid-crawl.
At ``concurrency=1`` with zero latency the crawler invokes nodes in the
exact order of the serial layered BFS (:class:`repro.core.crawl.InitialCrawl`),
so counter state, budget raises, and discovered-row order are identical —
the parity pin ``tests/crawl/test_crawler.py`` asserts.  Higher
concurrency reorders *completions* (never the per-batch accounting), which
is precisely the freedom that buys wall-clock.

**Determinism.**  All waiting goes through a :class:`~repro.crawl.clock.FakeClock`
(scripted fetch latency plus mirrored rate-limit waits), and completions
are consumed through a FIFO queue, never an unordered set — so a fixed
``(graph, start, concurrency, batch_size, latency script)`` replays the
same interleaving bit for bit under :func:`~repro.crawl.clock.drive`.

**Backpressure.**  At most ``concurrency`` batches (≤ ``concurrency ×
batch_size`` nodes) are ever in flight; the frontier is consumed lazily.
When the API carries a :class:`~repro.osn.ratelimit.TokenBucketRateLimiter`,
each batch's simulated rate-limit wait is mirrored onto the crawl clock
before the next batch is issued from that slot — a starved bucket slows
the crawler down instead of letting it spin.  The mirror is per slot, so
waits overlap across concurrent slots: that models a crawler holding one
credential per connection (each slot rides its own limit), and is
optimistic for a single account whose bucket gates all connections
globally — for that reading, the limiter's own virtual clock
(``api.rate_limiter.clock.now``), which concurrency never compresses, is
the authoritative campaign duration.

The crawler is resumable: :meth:`crawl` (or the async
:meth:`crawl_chunk`) fetches up to ``max_new_rows`` rows, drains its
in-flight batches, and returns with the frontier intact — the pipeline
calls it once per epoch and compacts between calls.
"""

from __future__ import annotations

import asyncio
from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, List, Optional, Tuple

import numpy as np

from repro.crawl.clock import FakeClock, LatencyLike, drive, resolve_latency
from repro.errors import CheckpointError, ConfigurationError, NodeNotFoundError
from repro.walks.transitions import Node

#: Keys of the resumable-state document (:meth:`AsyncCrawler.state_dict`).
CRAWLER_STATE_KEYS = frozenset(
    {
        "start",
        "frontier",
        "enqueued",
        "rows_fetched",
        "batches_issued",
        "failed",
        "clock_now",
    }
)


@dataclass(frozen=True)
class CrawlChunkStats:
    """What one :meth:`AsyncCrawler.crawl` call did.

    Attributes
    ----------
    new_rows:
        Neighbor rows fetched during this chunk.
    batches:
        Fetch batches issued during this chunk.
    started_at / finished_at:
        Simulated clock readings bracketing the chunk; their difference is
        the chunk's simulated duration (latency + mirrored rate waits).
    """

    new_rows: int
    batches: int
    started_at: float
    finished_at: float

    @property
    def seconds(self) -> float:
        """Simulated seconds this chunk took."""
        return self.finished_at - self.started_at


class AsyncCrawler:
    """Concurrent BFS over a charged API, feeding the discovered graph.

    Parameters
    ----------
    api:
        The charged :class:`~repro.osn.api.SocialNetworkAPI`.  Rows land in
        ``api.discovered`` as each batch settles.
    start:
        Crawl origin (must exist on the network; checked up front, free).
    concurrency:
        Maximum fetch batches in flight at once.  1 reproduces the serial
        crawl's accounting and row order exactly.
    batch_size:
        Frontier nodes per fetch batch (one accounting settlement each).
    max_depth:
        Crawl only nodes within this many hops of *start* (the frontier
        layer at ``max_depth`` is fetched but not expanded), matching
        ``InitialCrawl(hops=max_depth)``.  ``None`` crawls everything
        reachable.
    clock:
        The :class:`FakeClock` all waiting goes through; defaults to a
        fresh one (read :attr:`clock` ``.now`` for simulated duration).
    latency:
        Scripted per-batch fetch latency — see
        :func:`~repro.crawl.clock.resolve_latency`.
    """

    def __init__(
        self,
        api,
        start: Node,
        *,
        concurrency: int = 4,
        batch_size: int = 32,
        max_depth: Optional[int] = None,
        clock: Optional[FakeClock] = None,
        latency: LatencyLike = None,
    ) -> None:
        if concurrency < 1:
            raise ConfigurationError(f"concurrency must be >= 1, got {concurrency}")
        if batch_size < 1:
            raise ConfigurationError(f"batch_size must be >= 1, got {batch_size}")
        if max_depth is not None and max_depth < 0:
            raise ConfigurationError(f"max_depth must be >= 0, got {max_depth}")
        if not api.has_node(start):
            raise NodeNotFoundError(start)
        self.api = api
        self.start = start
        self.concurrency = concurrency
        self.batch_size = batch_size
        self.max_depth = max_depth
        self.clock = clock if clock is not None else FakeClock()
        self._latency = resolve_latency(latency)
        #: FIFO frontier of (node, depth) pairs not yet issued for fetch.
        self._frontier: Deque[Tuple[Node, int]] = deque([(start, 0)])
        #: Every id ever enqueued (never re-enqueued) — BFS visit set.
        self._enqueued: set[Node] = {start}
        self.rows_fetched = 0
        self.batches_issued = 0
        self._failed = False

    # ------------------------------------------------------------------
    # State
    # ------------------------------------------------------------------
    @property
    def discovered(self):
        """The shared discovered graph the crawl feeds (``api.discovered``)."""
        return self.api.discovered

    @property
    def failed(self) -> bool:
        """True after an error (budget exhaustion included) ended the crawl."""
        return self._failed

    @property
    def finished(self) -> bool:
        """True when nothing remains to fetch (frontier empty or crawl failed)."""
        return self._failed or not self._frontier

    @property
    def frontier_size(self) -> int:
        """Nodes discovered but not yet issued for fetching."""
        return len(self._frontier)

    # ------------------------------------------------------------------
    # Resumable state
    # ------------------------------------------------------------------
    def state_dict(self) -> Dict[str, object]:
        """JSON-safe snapshot of the crawl's resumable state.

        Captures everything a fresh crawler (constructed with the same
        configuration over the same API) needs to continue *exactly* where
        this one stands: the FIFO frontier in order, the BFS visit set,
        the row/batch counters (the batch counter also indexes the
        latency script), the failure flag, and the clock reading.  Graph
        rows are not included — they live in the API's shared
        :class:`~repro.graphs.discovered.DiscoveredGraph`, which the
        checkpoint layer snapshots separately.  Call between chunks (no
        batches in flight); a restored crawl then issues the same batches
        in the same order as the uninterrupted run.
        """
        return {
            "start": int(self.start),
            "frontier": [[int(node), int(depth)] for node, depth in self._frontier],
            "enqueued": sorted(int(node) for node in self._enqueued),
            "rows_fetched": int(self.rows_fetched),
            "batches_issued": int(self.batches_issued),
            "failed": bool(self._failed),
            "clock_now": float(self.clock.now),
        }

    def restore_state(self, state: Dict[str, object]) -> None:
        """Adopt a :meth:`state_dict` snapshot (inverse operation).

        The crawler must have been constructed with the snapshot's start
        node; configuration (concurrency, batch size, latency script) is
        the constructor's job and is not part of the state document.  The
        clock is advanced (never rewound) to the snapshot's reading, so
        time-dependent machinery — rate limiters mirrored onto this
        clock, fault-plan time windows — continues from the same instant.
        """
        missing = CRAWLER_STATE_KEYS - set(state)
        if missing:
            raise CheckpointError(
                f"crawler state is missing keys: {sorted(missing)}"
            )
        unknown = set(state) - CRAWLER_STATE_KEYS
        if unknown:
            raise CheckpointError(
                f"crawler state has unknown keys: {sorted(unknown)}"
            )
        if int(state["start"]) != int(self.start):
            raise CheckpointError(
                f"state was captured for start node {state['start']}, "
                f"but this crawler starts at {self.start}"
            )
        self._frontier = deque(
            (int(node), int(depth)) for node, depth in state["frontier"]
        )
        self._enqueued = {int(node) for node in state["enqueued"]}
        self.rows_fetched = int(state["rows_fetched"])
        self.batches_issued = int(state["batches_issued"])
        self._failed = bool(state["failed"])
        if float(state["clock_now"]) > self.clock.now:
            self.clock.advance_to(float(state["clock_now"]))

    # ------------------------------------------------------------------
    # Crawling
    # ------------------------------------------------------------------
    def _take_batch(self, room: Optional[int]) -> List[Tuple[Node, int]]:
        """Pop the next fetch batch (≤ batch_size, ≤ room) off the frontier."""
        width = self.batch_size if room is None else min(self.batch_size, room)
        batch: List[Tuple[Node, int]] = []
        while self._frontier and len(batch) < width:
            batch.append(self._frontier.popleft())
        return batch

    def _absorb(self, batch: List[Tuple[Node, int]], rows) -> None:
        """Fold one settled batch back into the frontier, BFS order."""
        self.rows_fetched += len(batch)
        for (node, depth), row in zip(batch, rows):
            if self.max_depth is not None and depth >= self.max_depth:
                continue
            for neighbor in row:
                if neighbor not in self._enqueued:
                    self._enqueued.add(neighbor)
                    self._frontier.append((neighbor, depth + 1))

    async def _fetch(
        self,
        sequence: int,
        batch: List[Tuple[Node, int]],
        delay: float,
        results: asyncio.Queue,
    ) -> None:
        """One in-flight batch: scripted latency, charged fetch, rate mirror."""
        try:
            if delay > 0:
                await self.clock.sleep(delay)
            limiter = getattr(self.api, "rate_limiter", None)
            before = limiter.clock.now if limiter is not None else 0.0
            nodes = np.fromiter(
                (node for node, _ in batch), dtype=np.int64, count=len(batch)
            )
            rows = self.api.neighbors_batch(nodes)
            if limiter is not None:
                # Mirror the batch's simulated rate-limit wait onto the
                # crawl clock: a drained token bucket must slow the crawl
                # down, not just advance a counter nobody awaits.
                waited = limiter.clock.now - before
                if waited > 0:
                    await self.clock.sleep(waited)
            mirror = getattr(self.api, "consume_mirror_wait", None)
            if mirror is not None:
                # Same mirror for the resilience/fault wrappers: injected
                # slow responses and retry backoffs cost campaign time.
                waited = mirror()
                if waited > 0:
                    await self.clock.sleep(waited)
            await results.put((sequence, batch, rows))
        except asyncio.CancelledError:
            raise
        except Exception as error:
            await results.put(error)

    async def crawl_chunk(self, max_new_rows: Optional[int] = None) -> CrawlChunkStats:
        """Fetch up to *max_new_rows* rows concurrently, then drain in-flight.

        The resumable unit of crawling: state (frontier, visit set,
        counters) persists across calls.  ``None`` crawls until the
        frontier is exhausted.  Any fetch error (budget exhaustion above
        all) cancels the remaining in-flight batches and re-raises; the
        crawler is then :attr:`failed` and refuses further chunks —
        whatever settled before the error is already in the discovered
        graph, charged exactly as the serial crawl would have charged it.
        An *external* cancellation (or KeyboardInterrupt) is not the
        campaign's fault: un-absorbed batches go back onto the frontier
        and a later chunk resumes where this one stopped — re-issuing a
        batch whose fetch had already settled is free, the rows are
        cached.
        """
        if self._failed:
            raise ConfigurationError(
                "crawler has failed (budget exhausted or fetch error); "
                "start a new crawler for a new campaign"
            )
        if max_new_rows is not None and max_new_rows < 1:
            raise ConfigurationError(
                f"max_new_rows must be >= 1 or None, got {max_new_rows}"
            )
        started_at = self.clock.now
        rows_before = self.rows_fetched
        batches_before = self.batches_issued
        results: asyncio.Queue = asyncio.Queue()
        live: List[asyncio.Task] = []
        pending: Dict[int, List[Tuple[Node, int]]] = {}
        inflight = 0
        issued = 0
        try:
            while True:
                while (
                    inflight < self.concurrency
                    and self._frontier
                    and (max_new_rows is None or issued < max_new_rows)
                ):
                    room = None if max_new_rows is None else max_new_rows - issued
                    batch = self._take_batch(room)
                    issued += len(batch)
                    sequence = self.batches_issued
                    self.batches_issued += 1
                    pending[sequence] = batch
                    delay = float(self._latency(sequence, [n for n, _ in batch]))
                    task = asyncio.ensure_future(
                        self._fetch(sequence, batch, delay, results)
                    )
                    live.append(task)
                    inflight += 1
                if inflight == 0:
                    break
                outcome = await results.get()
                inflight -= 1
                if isinstance(outcome, Exception):
                    raise outcome
                sequence, batch, rows = outcome
                del pending[sequence]
                self._absorb(batch, rows)
        except BaseException as error:
            if isinstance(error, Exception):
                self._failed = True
            for task in live:
                task.cancel()
            await asyncio.gather(*live, return_exceptions=True)
            if not self._failed and pending:
                # Cancelled, not failed: restore un-absorbed batches to
                # the frontier front in issue order so a resumed crawl
                # re-covers them (and keeps the serial BFS order intact).
                for _, batch in sorted(pending.items(), reverse=True):
                    self._frontier.extendleft(reversed(batch))
            raise
        return CrawlChunkStats(
            new_rows=self.rows_fetched - rows_before,
            batches=self.batches_issued - batches_before,
            started_at=started_at,
            finished_at=self.clock.now,
        )

    def crawl(self, max_new_rows: Optional[int] = None) -> CrawlChunkStats:
        """Synchronous :meth:`crawl_chunk`: drive it on the crawler's clock."""
        return drive(self.clock, self.crawl_chunk(max_new_rows))

    def __repr__(self) -> str:
        return (
            f"AsyncCrawler(start={self.start}, concurrency={self.concurrency}, "
            f"rows={self.rows_fetched}, frontier={len(self._frontier)}, "
            f"failed={self._failed})"
        )
