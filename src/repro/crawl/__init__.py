"""Asynchronous crawling: concurrent discovery feeding a growing topology.

The "walk, not wait" premise, applied to the crawl phase: while the
network answers one neighbor-list request, the frontier keeps moving.

* :class:`~repro.crawl.clock.FakeClock` / :func:`~repro.crawl.clock.drive`
  — deterministic virtual time for coroutines, the harness that makes
  every concurrent interleaving reproducible bit for bit;
* :class:`~repro.crawl.crawler.AsyncCrawler` — bounded-concurrency BFS
  over :meth:`~repro.osn.api.SocialNetworkAPI.neighbors_batch` with
  accounting identical to the serial crawl (parity-pinned at
  concurrency 1);
* :class:`~repro.crawl.publisher.TopologyPublisher` — periodic
  ``compact()`` of the discovered graph into shared-memory CSR slabs,
  swapped atomically under running walk engines with epoch/lease
  retirement (no torn reads, no leaked ``/dev/shm`` segments);
* :class:`~repro.crawl.pipeline.CrawlWalkPipeline` — the front end that
  interleaves crawl epochs with sharded walk rounds so estimates refine
  as the graph grows.
"""

from repro.crawl.clock import FakeClock, drive, resolve_latency
from repro.crawl.crawler import CRAWLER_STATE_KEYS, AsyncCrawler, CrawlChunkStats
from repro.crawl.pipeline import CrawlEpochRecord, CrawlWalkPipeline, PipelineResult
from repro.crawl.publisher import PublishedTopology, TopologyLease, TopologyPublisher

__all__ = [
    "AsyncCrawler",
    "CRAWLER_STATE_KEYS",
    "CrawlChunkStats",
    "CrawlEpochRecord",
    "CrawlWalkPipeline",
    "FakeClock",
    "PipelineResult",
    "PublishedTopology",
    "TopologyLease",
    "TopologyPublisher",
    "drive",
    "resolve_latency",
]
