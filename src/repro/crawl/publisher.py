"""Topology publication: compact the discovered graph into swappable slabs.

The crawler appends rows to a :class:`~repro.graphs.discovered.DiscoveredGraph`;
the sharded walk engine wants a frozen zero-copy
:class:`~repro.graphs.shm.SharedCSR` slab.  :class:`TopologyPublisher` is
the hand-off between them: each :meth:`~TopologyPublisher.publish` call
``compact()``s the discovered region into a fresh shared-memory slab (one
*epoch*) and atomically swaps it in as the current topology, while readers
pinned to the previous epoch keep a consistent view until they let go.

**Epoch/lease retirement.**  Readers never touch :attr:`current` bare —
they :meth:`~TopologyPublisher.acquire` a :class:`TopologyLease` (a
refcount on that epoch) and release it when their round ends.  A publish
marks the previous epoch *superseded*; its segment is closed-and-unlinked
the moment its lease count hits zero (immediately, if nobody held it).
That yields the two guarantees the swap tests pin:

* a walk round that acquired epoch N before a swap completes against
  epoch N's slab — bit-identical to a round over a frozen copy, never a
  torn mix of epochs;
* no slab — ``/dev/shm`` segment or file-backed ``*.slab`` alike —
  outlives its last lease: superseded epochs unlink on final release,
  the current epoch on :meth:`~TopologyPublisher.close`, and a publish
  that fails mid-swap closes the slab it had created before re-raising.

By default the published graph is the **fetched-induced** subgraph
(:meth:`DiscoveredSlab.fetched_csr`): only nodes whose rows have been paid
for, with edges between them.  Walkers therefore never strand on a
frontier placeholder row, and as the crawl completes the published
topology converges to the hidden graph itself.  ``fetched_only=False``
publishes the full member slab (frontier nodes as empty rows) for callers
that want membership, not walkability.

The publisher is thread-safe: publish/acquire/release serialize on one
lock, and the discovered graph's own locking discipline (see
:mod:`repro.graphs.discovered`) makes ``compact()`` safe against a crawler
appending from another thread.
"""

from __future__ import annotations

import threading
from typing import Optional

from repro.errors import ConfigurationError
from repro.graphs.csr import CSRGraph
from repro.graphs.discovered import DiscoveredGraph, DiscoveredSlab
from repro.graphs.shm import STORAGES, CSRSlabSpec, SharedCSR


class PublishedTopology:
    """One published epoch: a frozen shared-memory slab plus its provenance.

    Created by :meth:`TopologyPublisher.publish`; retired by the publisher
    once superseded and lease-free.  Hold it through a
    :class:`TopologyLease`, not bare.
    """

    def __init__(
        self,
        epoch: int,
        shared: SharedCSR,
        slab: Optional[DiscoveredSlab],
        rows: int,
    ) -> None:
        self.epoch = epoch
        self.shared = shared
        #: The compaction this epoch froze (fetched mask, full member CSR).
        #: ``None`` for an epoch adopted from a persisted slab on resume —
        #: no compaction produced it.
        self.slab = slab
        #: Discovered rows at publish time (the growth watermark).
        self.rows = rows
        self._leases = 0
        self._superseded = False

    @property
    def graph(self) -> CSRGraph:
        """Zero-copy view of the published topology."""
        return self.shared.graph

    @property
    def spec(self) -> CSRSlabSpec:
        """Picklable attach recipe (ships to walk workers)."""
        return self.shared.spec

    @property
    def retired(self) -> bool:
        """True once the backing segment has been closed and unlinked."""
        return self.shared.closed

    @property
    def leases(self) -> int:
        """Outstanding reader leases on this epoch."""
        return self._leases

    def __repr__(self) -> str:
        state = "retired" if self.retired else f"leases={self._leases}"
        return f"PublishedTopology(epoch={self.epoch}, rows={self.rows}, {state})"


class TopologyLease:
    """A reader's refcount on one published epoch (context manager).

    Walk rounds acquire a lease before fanning out and release it after
    the merge — the segment they attached cannot be unlinked underneath
    them, no matter how many publishes happen mid-round.
    """

    def __init__(self, publisher: "TopologyPublisher", topology: PublishedTopology):
        self._publisher = publisher
        self._topology: Optional[PublishedTopology] = topology

    @property
    def topology(self) -> PublishedTopology:
        if self._topology is None:
            raise ConfigurationError("lease already released")
        return self._topology

    @property
    def graph(self) -> CSRGraph:
        """The leased epoch's graph."""
        return self.topology.graph

    @property
    def epoch(self) -> int:
        return self.topology.epoch

    def release(self) -> None:
        """Drop the refcount (idempotent); may unlink a superseded epoch."""
        if self._topology is not None:
            topology, self._topology = self._topology, None
            self._publisher._release(topology)

    def __enter__(self) -> "TopologyLease":
        return self

    def __exit__(self, *exc) -> None:
        self.release()

    def __repr__(self) -> str:
        if self._topology is None:
            return "TopologyLease(released)"
        return f"TopologyLease(epoch={self._topology.epoch})"


class TopologyPublisher:
    """Periodic ``compact()`` → :class:`SharedCSR` swap with epoch retirement.

    Parameters
    ----------
    discovered:
        The store the crawler feeds (normally ``api.discovered``).
    fetched_only:
        Publish the fetched-induced subgraph (default) rather than the
        full member slab — see the module docstring.
    min_new_rows:
        Growth gate: :meth:`publish` is a no-op (returns ``None``) unless
        at least this many rows arrived since the last publish.  Keeps a
        periodic publisher from churning segments while the crawler
        stalls on a slow network.
    storage:
        Slab backend for published epochs — ``"shm"`` (default) or
        ``"file"`` (see :mod:`repro.graphs.shm`).  Lease retirement and
        owner-unlink rules are identical for both.
    slab_dir:
        Directory for ``storage="file"`` slabs (required then, ignored
        otherwise).
    """

    def __init__(
        self,
        discovered: DiscoveredGraph,
        *,
        fetched_only: bool = True,
        min_new_rows: int = 1,
        storage: str = "shm",
        slab_dir: Optional[str] = None,
    ) -> None:
        if min_new_rows < 1:
            raise ConfigurationError(f"min_new_rows must be >= 1, got {min_new_rows}")
        if storage not in STORAGES:
            raise ConfigurationError(
                f"unknown slab storage {storage!r}; expected one of {STORAGES}"
            )
        if storage == "file" and slab_dir is None:
            raise ConfigurationError("storage='file' requires a slab_dir")
        self._discovered = discovered
        self._fetched_only = fetched_only
        self._min_new_rows = min_new_rows
        self._storage = storage
        self._slab_dir = slab_dir
        self._lock = threading.RLock()
        self._current: Optional[PublishedTopology] = None
        self._epoch = 0
        self._closed = False
        #: Compactions actually performed by :meth:`publish` — gated
        #: no-ops and :meth:`adopt` don't count.  The resume tests pin
        #: this at zero when a persisted slab is re-attached.
        self.compactions = 0

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def current(self) -> Optional[PublishedTopology]:
        """The live epoch (None before the first publish / after close)."""
        with self._lock:
            return self._current

    @property
    def current_epoch(self) -> int:
        """Epoch counter: 0 before the first publish, then monotone."""
        with self._lock:
            return self._epoch

    @property
    def closed(self) -> bool:
        with self._lock:
            return self._closed

    @property
    def storage(self) -> str:
        """Slab backend published epochs use (``"shm"`` or ``"file"``)."""
        return self._storage

    @property
    def slab_dir(self) -> Optional[str]:
        """Where file-backed slabs land (``None`` for shm storage)."""
        return self._slab_dir

    # ------------------------------------------------------------------
    # Publishing
    # ------------------------------------------------------------------
    def publish(self, force: bool = False) -> Optional[PublishedTopology]:
        """Compact the discovered region and swap it in as a new epoch.

        Returns the new :class:`PublishedTopology`, or ``None`` when the
        growth gate says nothing meaningful changed (*force* overrides).
        On any failure after the slab was allocated, the slab is closed
        before the error propagates — a failed swap never leaks a
        ``/dev/shm`` segment, and the previous epoch stays current.
        """
        with self._lock:
            if self._closed:
                raise ConfigurationError("publisher is closed")
            # Pre-gate on the store's own fetched counter before paying
            # for a compaction: in a fresh process (resume onto an
            # adopted slab) the compact cache is cold, and a gated no-op
            # must stay a no-op — zero re-compactions, not merely zero
            # slabs.  ``fetched_count`` only grows, so this can never
            # block a publish the slab-derived gate below would allow.
            if (
                self._current is not None
                and not force
                and self._discovered.fetched_count - self._current.rows
                < self._min_new_rows
            ):
                return None
            # Compact, then derive the growth watermark from the slab
            # itself: rows a concurrent producer appends between the two
            # statements belong to the *next* epoch, so the watermark
            # never claims rows the slab does not contain (compaction is
            # cached per store generation, so a gated no-op stays cheap).
            slab = self._discovered.compact()
            rows = int(slab.fetched.sum())
            if (
                self._current is not None
                and not force
                and rows - self._current.rows < self._min_new_rows
            ):
                return None
            self.compactions += 1
            csr = slab.fetched_csr() if self._fetched_only else slab.csr
            shared = SharedCSR.create(
                csr, storage=self._storage, slab_dir=self._slab_dir
            )
            try:
                topology = PublishedTopology(self._epoch + 1, shared, slab, rows)
                self._install(topology)
            except BaseException:
                shared.close()
                raise
            return topology

    def adopt(
        self, shared: SharedCSR, *, rows: int, epoch: Optional[int] = None
    ) -> PublishedTopology:
        """Install an externally attached slab as the current epoch.

        The resume path: a checkpoint recorded a persisted file slab,
        :meth:`SharedCSR.adopt` re-attached it, and this publisher takes
        ownership without compacting anything — the adopted epoch retires
        through the normal supersede/lease rules.  *rows* is the growth
        watermark the slab was published at; *epoch* restores the epoch
        counter (defaults to the next epoch).  Only valid while nothing
        has been published yet.
        """
        with self._lock:
            if self._closed:
                raise ConfigurationError("publisher is closed")
            if self._current is not None or self._epoch:
                raise ConfigurationError(
                    "adopt() requires a publisher that has not published yet"
                )
            if shared.closed:
                raise ConfigurationError("cannot adopt a closed slab")
            topology = PublishedTopology(
                self._epoch + 1 if epoch is None else int(epoch),
                shared,
                slab=None,
                rows=int(rows),
            )
            self._install(topology)
            return topology

    def _install(self, topology: PublishedTopology) -> None:
        """Swap *topology* in as current and retire the superseded epoch."""
        previous, self._current = self._current, topology
        self._epoch = topology.epoch
        if previous is not None:
            previous._superseded = True
            if previous._leases == 0:
                previous.shared.close()

    # ------------------------------------------------------------------
    # Leasing
    # ------------------------------------------------------------------
    def acquire(self) -> TopologyLease:
        """Lease the current epoch; its segment outlives any later swap
        until :meth:`TopologyLease.release`."""
        with self._lock:
            if self._current is None:
                raise ConfigurationError(
                    "nothing published yet; call publish() before acquire()"
                )
            self._current._leases += 1
            return TopologyLease(self, self._current)

    def _release(self, topology: PublishedTopology) -> None:
        with self._lock:
            topology._leases -= 1
            assert topology._leases >= 0, "lease over-released"
            if topology._superseded and topology._leases == 0:
                topology.shared.close()

    # ------------------------------------------------------------------
    # Lifetime
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Retire the current epoch (waiting, via refcount, on open leases).

        Idempotent.  With no leases outstanding the segment unlinks here;
        otherwise it unlinks when the last reader releases.
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
            if self._current is not None:
                self._current._superseded = True
                if self._current._leases == 0:
                    self._current.shared.close()
                self._current = None

    def __enter__(self) -> "TopologyPublisher":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:
        with self._lock:
            state = "closed" if self._closed else f"epoch={self._epoch}"
        return f"TopologyPublisher({self._discovered.name!r}, {state})"
