"""Service observability: counters, gauges, latency stats, monitor samples.

Deliberately dependency-free and synchronous — every instrument is a plain
Python object mutated from the service's single event loop, so reads never
race writes and a metrics snapshot is an ordinary dict.  Time, where it
appears, is the service's :class:`~repro.crawl.clock.FakeClock` virtual
time (or whatever clock the service runs on), never the wall — metrics are
part of the deterministic replay, not an exception to it.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional


@dataclass
class Counter:
    """Monotone event count."""

    value: int = 0

    def inc(self, amount: int = 1) -> None:
        """Add *amount* (must be >= 0) to the count."""
        if amount < 0:
            raise ValueError(f"counter increments must be >= 0, got {amount}")
        self.value += amount


@dataclass
class Gauge:
    """Last-write-wins instantaneous value, with a high-water mark."""

    value: float = 0.0
    high_water: float = 0.0

    def set(self, value: float) -> None:
        """Record the current level."""
        self.value = float(value)
        self.high_water = max(self.high_water, self.value)


@dataclass
class LatencyStat:
    """Running moments of a duration distribution (O(1) memory).

    The no-observation state is pinned as ``None`` — not ``0.0`` (which
    would read as "instant") and never ``NaN`` (which is not valid
    JSON): before any :meth:`observe`, :attr:`mean`, :attr:`stddev`, and
    :attr:`max` are all ``None``.  After exactly one observation the
    mean and max equal that sample and the spread is ``0.0``.
    :meth:`summary` packages all four fields JSON-serializably in every
    state.
    """

    count: int = 0
    total: float = 0.0
    _sum_sq: float = 0.0
    max: Optional[float] = None

    def observe(self, seconds: float) -> None:
        """Record one duration (simulated seconds)."""
        if seconds < 0:
            raise ValueError(f"durations must be >= 0, got {seconds}")
        self.count += 1
        self.total += seconds
        self._sum_sq += seconds * seconds
        self.max = seconds if self.max is None else max(self.max, seconds)

    @property
    def mean(self) -> Optional[float]:
        """Mean duration; ``None`` before any observation."""
        return self.total / self.count if self.count else None

    @property
    def stddev(self) -> Optional[float]:
        """Population standard deviation; ``None`` before any observation.

        One observation has no spread, so the single-sample value is
        ``0.0`` (defined, degenerate), not ``None`` (undefined).
        """
        if self.count == 0:
            return None
        if self.count == 1:
            return 0.0
        variance = self._sum_sq / self.count - self.mean**2
        return math.sqrt(max(0.0, variance))

    def summary(self) -> Dict[str, Optional[float]]:
        """JSON-safe view (finite floats or ``None``, never NaN)."""
        return {
            "count": self.count,
            "mean": self.mean,
            "stddev": self.stddev,
            "max": self.max,
        }


@dataclass(frozen=True)
class MonitorSample:
    """One periodic reading taken by the background monitor worker."""

    clock_seconds: float
    queue_depth: int
    running_jobs: int
    query_cost: int
    raw_calls: int
    cache_hit_rate: float
    published_epochs: int


class ServiceMetrics:
    """The serving layer's instrument panel.

    Counters cover the job lifecycle and the epoch machinery; gauges track
    the levels admission control acts on; latency stats time what tenants
    feel (submission → first partial, whole-job turnaround) and what the
    operator tunes (crawl chunk and walk round durations).  The monitor
    worker appends a :class:`MonitorSample` per tick to :attr:`samples`.
    """

    def __init__(self) -> None:
        self.jobs_submitted = Counter()
        self.jobs_rejected = Counter()
        self.jobs_completed = Counter()
        self.jobs_preempted = Counter()
        self.jobs_failed = Counter()
        self.jobs_cancelled = Counter()
        self.rounds = Counter()
        self.partials_streamed = Counter()
        self.epochs_published = Counter()
        self.crawl_rows = Counter()
        self.queue_depth = Gauge()
        self.running_jobs = Gauge()
        self.cache_hit_rate = Gauge()
        self.first_partial_latency = LatencyStat()
        self.job_turnaround = LatencyStat()
        self.crawl_seconds = LatencyStat()
        self.round_seconds = LatencyStat()
        self.samples: List[MonitorSample] = []

    def record_cache_rate(self, unique_nodes: int, raw_calls: int) -> None:
        """Update the cache-hit gauge from the global counter's totals.

        A "hit" is a raw API invocation answered from the discovered
        store for free — §2.4's repeat lookup — so the rate is
        ``(raw - unique) / raw``.
        """
        rate = (raw_calls - unique_nodes) / raw_calls if raw_calls else 0.0
        self.cache_hit_rate.set(rate)

    def observe_monitor(
        self,
        clock_seconds: float,
        queue_depth: int,
        running_jobs: int,
        query_cost: int,
        raw_calls: int,
        published_epochs: int,
    ) -> Optional[MonitorSample]:
        """Record one monitor tick (updates gauges, appends a sample)."""
        self.queue_depth.set(queue_depth)
        self.running_jobs.set(running_jobs)
        self.record_cache_rate(query_cost, raw_calls)
        sample = MonitorSample(
            clock_seconds=clock_seconds,
            queue_depth=queue_depth,
            running_jobs=running_jobs,
            query_cost=query_cost,
            raw_calls=raw_calls,
            cache_hit_rate=self.cache_hit_rate.value,
            published_epochs=published_epochs,
        )
        self.samples.append(sample)
        return sample

    def snapshot(self) -> Dict[str, object]:
        """Flat JSON-safe view of every instrument (bench/adapter output).

        Latency fields follow the pinned :class:`LatencyStat` empty-state
        contract: ``None`` (JSON ``null``) before any observation, so a
        snapshot taken at any point in the service lifecycle serializes
        with ``json.dumps(..., allow_nan=False)`` and never conflates
        "no data yet" with a measured zero.
        """
        return {
            "jobs_submitted": self.jobs_submitted.value,
            "jobs_rejected": self.jobs_rejected.value,
            "jobs_completed": self.jobs_completed.value,
            "jobs_preempted": self.jobs_preempted.value,
            "jobs_failed": self.jobs_failed.value,
            "jobs_cancelled": self.jobs_cancelled.value,
            "rounds": self.rounds.value,
            "partials_streamed": self.partials_streamed.value,
            "epochs_published": self.epochs_published.value,
            "crawl_rows": self.crawl_rows.value,
            "queue_depth": self.queue_depth.value,
            "queue_depth_high_water": self.queue_depth.high_water,
            "running_jobs": self.running_jobs.value,
            "running_jobs_high_water": self.running_jobs.high_water,
            "cache_hit_rate": self.cache_hit_rate.value,
            "first_partial_latency_count": self.first_partial_latency.count,
            "first_partial_latency_mean": self.first_partial_latency.mean,
            "first_partial_latency_max": self.first_partial_latency.max,
            "job_turnaround_count": self.job_turnaround.count,
            "job_turnaround_mean": self.job_turnaround.mean,
            "job_turnaround_max": self.job_turnaround.max,
            "crawl_seconds_count": self.crawl_seconds.count,
            "crawl_seconds_mean": self.crawl_seconds.mean,
            "round_seconds_count": self.round_seconds.count,
            "round_seconds_mean": self.round_seconds.mean,
            "monitor_samples": len(self.samples),
        }
