"""Sampling-as-a-service: a multi-tenant serving layer over one shared graph.

ROADMAP open item 1 made concrete: the §2.4 client-side cache
(:class:`~repro.graphs.discovered.DiscoveredGraph`) becomes a multi-tenant
asset.  One :class:`SamplingService` multiplexes many concurrent estimation
jobs — each an :class:`~repro.core.dispatch.EstimationJobSpec`, each with
its own tenant, error target, and unique-node budget — over a single
charged API, a single crawler, a single topology publisher, and (for
sharded jobs) a single persistent walk engine.  Rows any tenant pays for
are cached for everyone, so N concurrent tenants spend strictly fewer
queries than N isolated runs at the same accuracy
(``benchmarks/bench_service.py`` measures exactly this).

The pieces:

* :mod:`repro.service.jobs` — job specs in flight: lifecycle states,
  streamed partial estimates, terminal results, tenant-facing handles;
* :mod:`repro.service.scheduler` — bounded-queue admission control,
  FIFO promotion, per-tenant budget views over the
  :class:`~repro.osn.accounting.TenantLedger`, crawl-driver rotation;
* :mod:`repro.service.server` — the epoch loop itself plus the optional
  FastAPI adapter (:func:`create_app`);
* :mod:`repro.service.metrics` — counters, gauges, latency stats, and
  the background monitor worker's samples;
* :mod:`repro.service.checkpoint` — crash-transparent snapshots: the
  whole campaign (rows, accounting, job refinement, RNG positions) as
  one atomic JSON document, resumed bit-identically by
  :meth:`SamplingService.resume` without re-paying any query.

Everything async runs on the service clock
(:class:`~repro.crawl.clock.FakeClock` under
:func:`~repro.crawl.clock.drive` in tests), so every interleaving —
admission, preemption on budget exhaustion, epoch swap under running
jobs — replays bit for bit.
"""

from repro.service.checkpoint import CHECKPOINT_VERSION
from repro.service.jobs import (
    Job,
    JobHandle,
    JobResult,
    JobState,
    PartialEstimate,
)
from repro.service.metrics import (
    Counter,
    Gauge,
    LatencyStat,
    MonitorSample,
    ServiceMetrics,
)
from repro.service.scheduler import JobScheduler
from repro.service.server import (
    SERVICE_BACKENDS,
    SamplingService,
    ServiceConfig,
    create_app,
)

__all__ = [
    "CHECKPOINT_VERSION",
    "SamplingService",
    "ServiceConfig",
    "SERVICE_BACKENDS",
    "create_app",
    "Job",
    "JobHandle",
    "JobResult",
    "JobState",
    "PartialEstimate",
    "JobScheduler",
    "ServiceMetrics",
    "Counter",
    "Gauge",
    "LatencyStat",
    "MonitorSample",
]
