"""Admission control and per-tenant budget scheduling.

The scheduler is the deterministic brain between the submit path and the
service's epoch loop:

* **Backpressure** — a bounded pending queue.  :meth:`JobScheduler.offer`
  raises :class:`~repro.errors.AdmissionError` when full (the non-blocking
  path); :meth:`JobScheduler.wait_for_space` lets an async submitter park
  until a slot frees, woken in FIFO order by admissions.
* **Admission** — strict FIFO promotion from pending to running, capped at
  ``max_running`` concurrent jobs.  FIFO keeps the whole service replayable:
  admission order is a pure function of submission order.
* **Budget accounting** — per-tenant unique-node budgets enforced against a
  :class:`~repro.osn.accounting.TenantLedger`.  A tenant's *declared* budget
  is the minimum ``query_budget`` across its live jobs (one principal, one
  purse); :meth:`tenant_remaining` is what admission and crawl-chunk sizing
  consult, and the ledger guarantees the sum of what tenants spend equals
  the global :class:`~repro.osn.accounting.QueryCounter` charge.
* **Crawl-driver rotation** — each epoch needs one tenant to pay for the
  next crawl chunk.  :meth:`next_driver` rotates round-robin through the
  running jobs whose tenants still have budget, so cost spreads instead of
  landing on whoever submitted first.
"""

from __future__ import annotations

import asyncio
from collections import deque
from typing import Deque, Dict, List, Optional

from repro.errors import AdmissionError, ConfigurationError
from repro.osn.accounting import TenantLedger
from repro.service.jobs import Job


class JobScheduler:
    """Bounded FIFO admission with per-tenant budget views.

    Parameters
    ----------
    ledger:
        The service's :class:`~repro.osn.accounting.TenantLedger`; budget
        arithmetic reads attributed charges from it.
    max_pending:
        Backpressure bound — jobs queued but not yet running.
    max_running:
        Concurrency bound — jobs receiving rounds each epoch.
    """

    def __init__(
        self, ledger: TenantLedger, *, max_pending: int = 16, max_running: int = 8
    ) -> None:
        if max_pending < 1:
            raise ConfigurationError(f"max_pending must be >= 1, got {max_pending}")
        if max_running < 1:
            raise ConfigurationError(f"max_running must be >= 1, got {max_running}")
        self.ledger = ledger
        self.max_pending = max_pending
        self.max_running = max_running
        self.pending: Deque[Job] = deque()
        self.running: List[Job] = []
        self._space_waiters: Deque[asyncio.Future] = deque()
        self._driver_cursor = 0

    # ------------------------------------------------------------------
    # Submission side
    # ------------------------------------------------------------------
    @property
    def queue_depth(self) -> int:
        """Jobs admitted but not yet running."""
        return len(self.pending)

    @property
    def has_work(self) -> bool:
        """True while any job is pending or running."""
        return bool(self.pending or self.running)

    def offer(self, job: Job) -> None:
        """Enqueue *job*, or raise :class:`AdmissionError` when full."""
        if len(self.pending) >= self.max_pending:
            raise AdmissionError(
                f"pending queue is full ({self.max_pending} jobs); retry "
                f"later or await submit()"
            )
        self.pending.append(job)

    async def wait_for_space(self) -> None:
        """Park until the pending queue has room (FIFO wake order)."""
        while len(self.pending) >= self.max_pending:
            future = asyncio.get_running_loop().create_future()
            self._space_waiters.append(future)
            await future

    def _wake_space_waiters(self) -> None:
        while self._space_waiters and len(self.pending) < self.max_pending:
            waiter = self._space_waiters.popleft()
            if not waiter.done():
                waiter.set_result(None)

    # ------------------------------------------------------------------
    # Admission
    # ------------------------------------------------------------------
    def admit(self) -> List[Job]:
        """Promote pending jobs FIFO until ``max_running`` is reached.

        Returns the newly promoted jobs (state flipped to RUNNING by the
        caller, which owns lifecycle bookkeeping).
        """
        promoted: List[Job] = []
        while self.pending and len(self.running) < self.max_running:
            job = self.pending.popleft()
            self.running.append(job)
            promoted.append(job)
        if promoted:
            self._wake_space_waiters()
        return promoted

    def retire(self, job: Job) -> None:
        """Remove a resolved job from the running set."""
        try:
            index = self.running.index(job)
        except ValueError:
            raise ConfigurationError(
                f"job {job.job_id} is not in the running set"
            ) from None
        self.running.pop(index)
        # Keep the rotation cursor pointing at the same *next* job.
        if index < self._driver_cursor:
            self._driver_cursor -= 1

    # ------------------------------------------------------------------
    # Budget views
    # ------------------------------------------------------------------
    def tenant_limit(self, tenant: str) -> Optional[int]:
        """The tenant's declared budget: min across its live jobs.

        ``None`` (unlimited) when no live job of the tenant declares one —
        a declared budget always wins over an undeclared sibling, because
        one principal cannot spend past its strictest promise.
        """
        limits = [
            job.spec.query_budget
            for job in list(self.pending) + self.running
            if job.tenant == tenant and job.spec.query_budget is not None
        ]
        return min(limits) if limits else None

    def tenant_remaining(self, tenant: str) -> Optional[int]:
        """Unique-node queries the tenant may still cause; None = unlimited."""
        limit = self.tenant_limit(tenant)
        if limit is None:
            return None
        return max(0, limit - self.ledger.charged(tenant))

    def budgets(self) -> Dict[str, Optional[int]]:
        """Declared budget per tenant with live jobs (diagnostics)."""
        tenants = {job.tenant for job in list(self.pending) + self.running}
        return {tenant: self.tenant_limit(tenant) for tenant in sorted(tenants)}

    # ------------------------------------------------------------------
    # Crawl-driver rotation
    # ------------------------------------------------------------------
    def next_driver(self) -> Optional[Job]:
        """The running job whose tenant pays for the next crawl chunk.

        Round-robin over the running list, skipping tenants with zero
        remaining budget; ``None`` when nobody can pay (the crawl stalls
        and jobs finish on free rounds alone).  Deterministic: the cursor
        only moves through admission/retirement bookkeeping and successful
        picks.
        """
        if not self.running:
            return None
        count = len(self.running)
        for step in range(count):
            index = (self._driver_cursor + step) % count
            job = self.running[index]
            remaining = self.tenant_remaining(job.tenant)
            if remaining is None or remaining > 0:
                self._driver_cursor = (index + 1) % count
                return job
        return None

    def __repr__(self) -> str:
        return (
            f"JobScheduler(pending={len(self.pending)}, "
            f"running={len(self.running)}, max_pending={self.max_pending}, "
            f"max_running={self.max_running})"
        )
