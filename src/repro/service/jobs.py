"""Job lifecycle: states, partial estimates, results, handles.

A *job* is one tenant's request — an
:class:`~repro.core.dispatch.EstimationJobSpec` — moving through the
serving layer: admitted into the bounded queue, promoted to RUNNING, fed
one WALK-ESTIMATE round per service epoch, streamed a
:class:`PartialEstimate` after each round, and finally resolved to a
terminal state with a :class:`JobResult`.

Everything here is loop-confined: jobs are mutated only from the service's
event loop, handles await plain :class:`asyncio.Event`/:class:`asyncio.Queue`
primitives, and nothing touches wall-clock time — so job histories replay
bit for bit under :func:`~repro.crawl.clock.drive`.
"""

from __future__ import annotations

import asyncio
import enum
import math
from dataclasses import dataclass
from typing import AsyncIterator, List, Optional

import numpy as np

from repro.core.dispatch import EstimationJobSpec
from repro.errors import ConfigurationError


class JobState(str, enum.Enum):
    """Lifecycle states of a service job.

    ``PENDING → RUNNING → {COMPLETED, PREEMPTED, FAILED, CANCELLED}``;
    ``REJECTED`` is assigned at submission when admission control refuses
    the spec outright (it never reaches the queue).
    """

    PENDING = "pending"
    RUNNING = "running"
    COMPLETED = "completed"
    PREEMPTED = "preempted"
    FAILED = "failed"
    REJECTED = "rejected"
    CANCELLED = "cancelled"

    @property
    def terminal(self) -> bool:
        """True once the job can no longer change state."""
        return self not in (JobState.PENDING, JobState.RUNNING)


@dataclass(frozen=True)
class PartialEstimate:
    """One refinement streamed to a tenant after a service round.

    The running self-normalized importance estimate over *every* sample
    the job has accumulated so far — each round's accepted WALK-ESTIMATE
    samples fold in, so successive partials converge as coverage and
    sample count grow.
    """

    job_id: str
    tenant: str
    round_index: int
    epoch: int
    estimate: float
    stderr: float
    samples: int
    query_cost: int
    clock_seconds: float


@dataclass(frozen=True)
class JobResult:
    """Terminal outcome of a job."""

    job_id: str
    tenant: str
    state: JobState
    estimate: float
    stderr: float
    samples: int
    rounds: int
    query_cost: int
    met_target: bool
    reason: str
    clock_seconds: float


class Job:
    """Service-side record of one submitted spec.

    Accumulates accepted sample values/weights across rounds, owns the
    job's private RNG stream (spawned deterministically at submission),
    and fans partials out through a stream queue that :class:`JobHandle`
    consumes.
    """

    def __init__(
        self, job_id: str, spec: EstimationJobSpec, rng: np.random.Generator
    ) -> None:
        self.job_id = job_id
        self.spec = spec
        self.rng = rng
        self.state = JobState.PENDING
        self.rounds = 0
        #: Rounds run since the tenant's budget hit zero (grace window).
        self.exhausted_rounds = 0
        self.submitted_at = 0.0
        self.first_partial_at: Optional[float] = None
        self._values: List[np.ndarray] = []
        self._weights: List[np.ndarray] = []
        self._samples = 0
        self._stream: asyncio.Queue = asyncio.Queue()
        self._done = asyncio.Event()
        self.partials: List[PartialEstimate] = []
        self.result: Optional[JobResult] = None

    # ------------------------------------------------------------------
    # Accumulation
    # ------------------------------------------------------------------
    @property
    def tenant(self) -> str:
        """The spec's accounting principal."""
        return self.spec.tenant

    @property
    def samples(self) -> int:
        """Accepted samples accumulated so far."""
        return self._samples

    def absorb(self, values: np.ndarray, weights: np.ndarray) -> None:
        """Fold one round's accepted samples into the running estimate."""
        values = np.asarray(values, dtype=np.float64)
        weights = np.asarray(weights, dtype=np.float64)
        if values.shape != weights.shape:
            raise ConfigurationError(
                f"values/weights shape mismatch: {values.shape} vs {weights.shape}"
            )
        if values.size:
            self._values.append(values)
            self._weights.append(weights)
            self._samples += int(values.size)

    def current_estimate(self) -> tuple[float, float]:
        """``(estimate, stderr)`` over everything absorbed so far.

        The self-normalized importance mean ``Σ w·f / Σ w`` with the
        linearized standard error ``sqrt(Σ w²(f − μ)²) / Σ w`` — the
        statistic the service compares against the spec's
        ``error_target``.  ``(nan, inf)`` before any sample.
        """
        if not self._samples:
            return float("nan"), float("inf")
        values = np.concatenate(self._values)
        weights = np.concatenate(self._weights)
        total = float(np.sum(weights))
        mean = float(np.sum(values * weights) / total)
        residuals = values - mean
        stderr = float(math.sqrt(np.sum((weights * residuals) ** 2)) / total)
        return mean, stderr

    def target_met(self, min_samples: int) -> bool:
        """Whether the spec's error target is satisfied.

        Jobs without an ``error_target`` never meet one — they run until
        another stop rule (round limit, preemption) fires.  At least
        *min_samples* accepted samples are required before the standard
        error is trusted; early rounds of a tiny published graph would
        otherwise report spuriously small errors.
        """
        if self.spec.error_target is None or self._samples < min_samples:
            return False
        _, stderr = self.current_estimate()
        return stderr <= self.spec.error_target

    # ------------------------------------------------------------------
    # Streaming + resolution
    # ------------------------------------------------------------------
    def push_partial(self, partial: PartialEstimate) -> None:
        """Record a partial and offer it to the handle's stream."""
        self.partials.append(partial)
        self._stream.put_nowait(partial)

    def resolve(self, result: JobResult) -> None:
        """Enter a terminal state; wakes every waiter, closes the stream."""
        if self.result is not None:
            raise ConfigurationError(f"job {self.job_id} is already resolved")
        if not result.state.terminal:
            raise ConfigurationError(
                f"cannot resolve job {self.job_id} to non-terminal {result.state}"
            )
        self.state = result.state
        self.result = result
        self._stream.put_nowait(None)  # stream sentinel
        self._done.set()

    def handle(self) -> "JobHandle":
        """A tenant-facing handle on this job."""
        return JobHandle(self)

    def __repr__(self) -> str:
        return (
            f"Job(id={self.job_id!r}, tenant={self.tenant!r}, "
            f"state={self.state.value}, rounds={self.rounds}, "
            f"samples={self._samples})"
        )


class JobHandle:
    """What a tenant holds: stream partials, await the result.

    Thin and loop-friendly — both entry points are coroutines awaiting the
    job's own primitives, so handles compose with any code running under
    the service's clock.
    """

    def __init__(self, job: Job) -> None:
        self._job = job

    @property
    def job_id(self) -> str:
        """The service-assigned job id."""
        return self._job.job_id

    @property
    def tenant(self) -> str:
        """The spec's accounting principal."""
        return self._job.tenant

    @property
    def state(self) -> JobState:
        """The job's current lifecycle state."""
        return self._job.state

    @property
    def partials(self) -> List[PartialEstimate]:
        """Every partial streamed so far (also consumable via
        :meth:`stream`)."""
        return list(self._job.partials)

    async def stream(self) -> AsyncIterator[PartialEstimate]:
        """Yield partial estimates as the service produces them.

        Terminates when the job resolves; partials produced before the
        iteration started are not replayed (read :attr:`partials` for the
        full history).
        """
        while True:
            item = await self._job._stream.get()
            if item is None:
                return
            yield item

    async def result(self) -> JobResult:
        """Wait until the job resolves and return its terminal result."""
        await self._job._done.wait()
        assert self._job.result is not None
        return self._job.result
