"""Service checkpointing: crash-transparent snapshots of a running campaign.

A long multi-tenant campaign accumulates three kinds of state worth real
money and real time: the **rows** the charged API already paid for (§2.4:
re-fetching them after a restart would be paying twice for cached data),
the **accounting** that proves who paid (counter + per-tenant ledger), and
the **refinement** each job has accumulated (sample values/weights, RNG
stream positions, partial history).  This module captures all of it as one
JSON document and rebuilds a :class:`~repro.service.server.SamplingService`
from it such that the resumed service finishes the campaign **bit-identically**
to one that never stopped — and, when the crawl had already completed,
without issuing a single additional unique-node query.

Checkpoints are taken at epoch boundaries (no crawl batches in flight, no
walk round half-absorbed), which is why every captured structure has an
exact, replayable meaning: the crawler's FIFO frontier, the scheduler's
queue and rotation cursor, each RNG's bit-generator state, the discovered
store's insertion order.  Documents are written through
:func:`repro.bench.io.atomic_write_json`, so a crash mid-write leaves the
previous checkpoint intact, never a torn one.

**Topology.**  What survives depends on the slab backend.  ``/dev/shm``
slabs die with the machine, so they are *not* captured — the first
post-resume publish rebuilds them from the restored rows (free, the rows
are local, but it re-pays the compaction).  A **file-backed** slab
(``ServiceConfig.slab_storage="file"``) outlives the process: the
checkpoint records its path and sha256 content digest, and
:func:`restore` re-attaches the persisted file instead of re-compacting —
zero re-paid queries *and* zero re-compactions.  A missing file or a
digest mismatch silently falls back to the rebuild-from-rows path: resume
may repeat work, but never publishes a wrong graph.  Live stream
subscriptions are never captured (a handle is a connection, not state;
``partials`` history is preserved, replay is the caller's choice).
"""

from __future__ import annotations

from dataclasses import asdict
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Union

import numpy as np

from repro.bench.io import atomic_write_json, load_json
from repro.core.dispatch import EstimationJobSpec
from repro.errors import CheckpointError, GraphError
from repro.graphs.shm import CSRSlabSpec, SharedCSR, compute_file_digest
from repro.service.jobs import Job, JobResult, JobState, PartialEstimate

#: Schema version stamped into every checkpoint document.  Version 2
#: added the ``topology`` record (persisted file-slab path + digest).
CHECKPOINT_VERSION = 2

#: Top-level keys every version-2 checkpoint document carries.
CHECKPOINT_KEYS = frozenset(
    {
        "version",
        "config",
        "start",
        "clock_now",
        "rng_state",
        "job_sequence",
        "epochs_run",
        "budget_exhausted",
        "jobs",
        "pending",
        "running",
        "driver_cursor",
        "counter",
        "ledger",
        "discovered",
        "crawler",
        "topology",
    }
)


def _rng_state(rng: np.random.Generator) -> Dict[str, Any]:
    """A generator's full bit-generator state (plain ints, JSON-safe)."""
    return rng.bit_generator.state


def _restore_rng(rng: np.random.Generator, state: Mapping[str, Any]) -> None:
    """Put *rng* exactly where the snapshot left it."""
    expected = rng.bit_generator.state["bit_generator"]
    if state.get("bit_generator") != expected:
        raise CheckpointError(
            f"checkpoint rng uses bit generator "
            f"{state.get('bit_generator')!r}, this build uses {expected!r}"
        )
    rng.bit_generator.state = dict(state)


def _job_document(job: Job) -> Dict[str, Any]:
    """One job's full resumable state (spec, stream position, samples)."""
    doc: Dict[str, Any] = {
        "job_id": job.job_id,
        "spec": job.spec.to_dict(),
        "rng_state": _rng_state(job.rng),
        "state": job.state.value,
        "rounds": job.rounds,
        "exhausted_rounds": job.exhausted_rounds,
        "submitted_at": job.submitted_at,
        "first_partial_at": job.first_partial_at,
        "values": [chunk.tolist() for chunk in job._values],
        "weights": [chunk.tolist() for chunk in job._weights],
        "partials": [vars(partial) for partial in job.partials],
        "result": None,
    }
    if job.result is not None:
        result = vars(job.result).copy()
        result["state"] = job.result.state.value
        doc["result"] = result
    return doc


def _rebuild_job(doc: Mapping[str, Any]) -> Job:
    """Inverse of :meth:`_job_document`: a job mid-flight, bit for bit."""
    job = Job(
        str(doc["job_id"]),
        EstimationJobSpec.from_dict(doc["spec"]),
        np.random.default_rng(),
    )
    _restore_rng(job.rng, doc["rng_state"])
    job.rounds = int(doc["rounds"])
    job.exhausted_rounds = int(doc["exhausted_rounds"])
    job.submitted_at = float(doc["submitted_at"])
    first_partial = doc["first_partial_at"]
    job.first_partial_at = None if first_partial is None else float(first_partial)
    for values, weights in zip(doc["values"], doc["weights"]):
        # absorb() recomputes the sample count and keeps the chunk
        # boundaries, so current_estimate() concatenates the identical
        # float64 sequence the original service would have.
        job.absorb(
            np.asarray(values, dtype=np.float64),
            np.asarray(weights, dtype=np.float64),
        )
    job.partials = [PartialEstimate(**partial) for partial in doc["partials"]]
    result = doc["result"]
    if result is not None:
        rebuilt = dict(result)
        rebuilt["state"] = JobState(rebuilt["state"])
        job.resolve(JobResult(**rebuilt))
    else:
        job.state = JobState(doc["state"])
    return job


def _topology_document(service) -> Optional[Dict[str, Any]]:
    """The live epoch's persistence record, or ``None``.

    Only a file-backed slab can be re-attached after the process dies, so
    only that case is recorded: the attach spec (path included), the
    epoch/watermark provenance, and a sha256 digest of the slab's bytes
    for :func:`_adopt_topology` to validate against.
    """
    current = service.publisher.current
    if current is None or current.retired or current.spec.storage != "file":
        return None
    return {
        "storage": "file",
        "path": current.spec.segment,
        "digest": current.shared.content_digest(),
        "epoch": int(current.epoch),
        "rows": int(current.rows),
        "spec": current.spec.to_dict(),
    }


def _adopt_topology(service, document: Optional[Mapping[str, Any]]) -> bool:
    """Re-attach the checkpoint's persisted slab; True when adopted.

    The happy path re-creates the pre-crash topology without a single
    compaction: re-map the slab file, hand it to the publisher as the
    restored epoch, and pin the service's standing lease to it.  Every
    guard falls back to ``False`` — the first post-resume publish then
    rebuilds from the restored rows exactly as a version-1 resume would.
    A stale or tampered slab never becomes the published graph: the file
    digest must match what :func:`capture` recorded.
    """
    if not document:
        return False
    try:
        if document.get("storage") != "file":
            return False
        spec = CSRSlabSpec.from_dict(document["spec"])
        if spec.storage != "file" or not Path(spec.segment).is_file():
            return False
        if compute_file_digest(spec.segment) != document.get("digest"):
            return False
        shared = SharedCSR.adopt(spec)
    except (OSError, GraphError, KeyError, TypeError, ValueError):
        return False
    try:
        service.publisher.adopt(
            shared, rows=int(document["rows"]), epoch=int(document["epoch"])
        )
        service._swap_lease()
    except BaseException:
        shared.close()
        raise
    return True


def capture(service) -> Dict[str, Any]:
    """Snapshot *service* into a JSON-safe checkpoint document.

    Call at an epoch boundary — between :meth:`SamplingService.step`
    calls, or from the service's own periodic checkpoint hook — when no
    crawl batch is in flight.  The document is self-contained modulo the
    hidden network: resuming needs a fresh charged API over the *same*
    network, and nothing else.
    """
    counter_state = service.api.counter.state()
    return {
        "version": CHECKPOINT_VERSION,
        "config": asdict(service.config),
        "start": int(service.start),
        "clock_now": float(service.clock.now),
        "rng_state": _rng_state(service._rng),
        "job_sequence": int(service._job_sequence),
        "epochs_run": int(service.epochs_run),
        "budget_exhausted": bool(service.budget_exhausted),
        "jobs": [_job_document(job) for job in service.jobs.values()],
        "pending": [job.job_id for job in service.scheduler.pending],
        "running": [job.job_id for job in service.scheduler.running],
        "driver_cursor": int(service.scheduler._driver_cursor),
        "counter": {
            "seen": list(counter_state[0]),
            "raw_calls": int(counter_state[1]),
        },
        "ledger": {
            "baseline": int(service.ledger.baseline),
            "charges": service.ledger.charges(),
        },
        "discovered": service.api.discovered.snapshot_rows(),
        "crawler": service.crawler.state_dict(),
        "topology": _topology_document(service),
    }


def write(service, path: Union[str, Path]) -> Path:
    """Capture *service* and write the document atomically to *path*.

    Same writer as every benchmark artifact
    (:func:`repro.bench.io.atomic_write_json`): the document lands whole
    or not at all, so the previous checkpoint survives a crash mid-write.
    """
    return atomic_write_json(path, capture(service))


def load(path: Union[str, Path]) -> Dict[str, Any]:
    """Read and validate a checkpoint document from disk."""
    document = load_json(path)
    return validate(document)


def validate(document: Mapping[str, Any]) -> Dict[str, Any]:
    """Check a checkpoint document's shape; raise :class:`CheckpointError`."""
    if not isinstance(document, Mapping):
        raise CheckpointError(
            f"checkpoint must be a mapping, got {type(document).__name__}"
        )
    version = document.get("version")
    if version != CHECKPOINT_VERSION:
        raise CheckpointError(
            f"unsupported checkpoint version {version!r}; "
            f"this build reads version {CHECKPOINT_VERSION}"
        )
    missing = CHECKPOINT_KEYS - set(document)
    if missing:
        raise CheckpointError(f"checkpoint is missing keys: {sorted(missing)}")
    unknown = set(document) - CHECKPOINT_KEYS
    if unknown:
        raise CheckpointError(f"checkpoint has unknown keys: {sorted(unknown)}")
    return dict(document)


def restore(service, document: Mapping[str, Any]) -> None:
    """Load a validated *document* into a freshly constructed *service*.

    The service must have been built over an API whose discovered store
    is empty (the row restore refuses otherwise) and must not have run
    any epoch or accepted any job yet.  Restore order matters: rows and
    counter first (the §2.4 cache and its proof of payment), then the
    ledger (whose balance check reads the counter), then crawler, jobs,
    and scheduler.
    """
    if service.jobs or service.epochs_run:
        raise CheckpointError(
            "restore targets must be freshly constructed services "
            f"(this one has {len(service.jobs)} jobs and "
            f"{service.epochs_run} epochs run)"
        )
    if int(document["start"]) != int(service.start):
        raise CheckpointError(
            f"checkpoint was captured for start node {document['start']}, "
            f"but this service starts at {service.start}"
        )
    service.api.discovered.restore_rows(document["discovered"])
    counter = document["counter"]
    service.api.counter.restore(counter["seen"], int(counter["raw_calls"]))
    ledger = document["ledger"]
    service.ledger.restore(int(ledger["baseline"]), ledger["charges"])
    service.crawler.restore_state(dict(document["crawler"]))
    if float(document["clock_now"]) > service.clock.now:
        service.clock.advance_to(float(document["clock_now"]))
    _restore_rng(service._rng, document["rng_state"])
    service._job_sequence = int(document["job_sequence"])
    service.epochs_run = int(document["epochs_run"])
    service.budget_exhausted = bool(document["budget_exhausted"])
    for doc in document["jobs"]:
        job = _rebuild_job(doc)
        service.jobs[job.job_id] = job
    pending: List[str] = list(document["pending"])
    running: List[str] = list(document["running"])
    for job_id in pending + running:
        if job_id not in service.jobs:
            raise CheckpointError(
                f"scheduler references unknown job {job_id!r}"
            )
    service.scheduler.pending.extend(service.jobs[job_id] for job_id in pending)
    service.scheduler.running.extend(service.jobs[job_id] for job_id in running)
    service.scheduler._driver_cursor = int(document["driver_cursor"])
    # Last, once rows and jobs are in place: re-attach a persisted file
    # slab if the checkpoint carried one (best-effort; on fallback the
    # first publish rebuilds the topology from the rows restored above).
    _adopt_topology(service, document.get("topology"))
