"""The sampling service: one shared discovered graph, many tenants.

:class:`SamplingService` is the asyncio front end over everything PR 3–5
built: one charged :class:`~repro.osn.api.SocialNetworkAPI` feeding one
shared :class:`~repro.graphs.discovered.DiscoveredGraph`, compacted into
``/dev/shm`` epochs by a :class:`~repro.crawl.publisher.TopologyPublisher`,
walked by either zero-copy in-process rounds or one persistent
:class:`~repro.walks.parallel.ShardedWalkEngine` — multiplexed across every
admitted job.  §2.4 is the whole economics: a row any tenant pays for is
cached forever, so concurrent tenants are strictly cheaper than isolated
ones (the property ``benchmarks/bench_service.py`` measures).

**The epoch loop.**  Each iteration of :meth:`SamplingService.serve`:

1. admits pending jobs FIFO up to the concurrency cap;
2. picks one *crawl driver* by budget-aware round-robin and grows the
   discovered graph by one chunk, attributed to that tenant's ledger
   account and capped at its remaining budget;
3. publishes a fresh topology epoch when the graph grew, and swaps the
   service's *standing lease* onto it (re-pointing the walk engine) —
   the old epoch's slab retires the moment the swap completes;
4. runs one WALK-ESTIMATE round per running job through the unified
   :func:`repro.core.estimate` dispatcher (the service never calls a
   front end directly), folds the accepted samples into the job's
   running importance estimate, and streams a
   :class:`~repro.service.jobs.PartialEstimate`;
5. resolves jobs whose error target is met, whose round limit is
   reached, or whose tenant budget is exhausted past the grace window
   (preemption).

**Determinism.**  All waiting runs on the service clock — a
:class:`~repro.crawl.clock.FakeClock` under :func:`~repro.crawl.clock.drive`
in tests — and all randomness flows from one seed through per-job spawned
streams, so every interleaving (admission, preemption, epoch swap under
running jobs) replays bit for bit.

**Hygiene.**  The service *holds a lease between rounds* (the standing
lease pinning the current epoch for the persistent engine).  On
:meth:`SamplingService.close` that lease is released **before**
``publisher.close()`` — otherwise the close would defer the unlink to a
lease nobody will ever release again and the ``/dev/shm`` segment would
outlive the service.  ``tests/crawl/test_service_hygiene.py`` pins this.

The optional HTTP adapter (:func:`create_app`) maps the same job API onto
FastAPI when it is installed; the core service has no dependency on it.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Sequence, Union

import numpy as np

from repro.core.dispatch import EstimationJobSpec, estimate
from repro.crawl.clock import FakeClock, LatencyLike, drive
from repro.crawl.crawler import AsyncCrawler
from repro.crawl.publisher import TopologyLease, TopologyPublisher
from repro.graphs.shm import STORAGES as SLAB_STORAGES
from repro.errors import (
    AdmissionError,
    ConfigurationError,
    QueryBudgetExceededError,
)
from repro.osn.accounting import TenantLedger
from repro.rng import RngLike, ensure_rng, spawn
from repro.service import checkpoint as checkpoint_module
from repro.service.jobs import Job, JobHandle, JobResult, JobState, PartialEstimate
from repro.service.metrics import ServiceMetrics
from repro.service.scheduler import JobScheduler
from repro.walks.parallel import ShardedWalkEngine

#: Backends the service can run over the shared free topology.  Scalar and
#: charged backends issue per-sample API queries of their own and would
#: bypass the ledger's phase attribution — submit them directly through
#: :func:`repro.core.estimate` instead.
SERVICE_BACKENDS = ("batch", "sharded")


@dataclass(frozen=True)
class ServiceConfig:
    """Operating knobs of a :class:`SamplingService`.

    Attributes
    ----------
    max_pending / max_running:
        Backpressure bound and concurrency cap (see
        :class:`~repro.service.scheduler.JobScheduler`).
    rows_per_epoch / batch_size / concurrency / max_depth:
        Crawl chunk shape per epoch, handed to the shared
        :class:`~repro.crawl.crawler.AsyncCrawler`.
    max_rounds_per_job:
        Hard per-job round limit; a job reaching it resolves COMPLETED
        with ``met_target=False`` when its target is still open.
    min_partial_samples:
        Accepted samples required before an error target may be declared
        met — guards against spuriously small standard errors on the
        first tiny epochs.
    grace_rounds:
        Free refinement rounds a budget-exhausted job may still run
        (walks cost nothing; only crawling charges) before it is
        preempted with its partial result.
    monitor_interval:
        Simulated seconds between background monitor samples; ``None``
        disables the monitor worker.
    n_workers / mp_context:
        Shape of the lazily created persistent walk engine used by
        sharded-backend jobs.
    checkpoint_path:
        Where the service writes periodic checkpoints (atomic JSON; see
        :mod:`repro.service.checkpoint`); ``None`` disables them.
    checkpoint_every:
        Epochs between periodic checkpoints when a path is configured.
    slab_storage / slab_dir:
        Backend for published topology slabs — ``"shm"`` (default) or
        ``"file"`` under *slab_dir* (see :mod:`repro.graphs.shm`).  With
        file storage, checkpoints record the live slab's path and
        content digest, and :meth:`SamplingService.resume` re-attaches
        it instead of re-compacting from rows.
    """

    max_pending: int = 16
    max_running: int = 8
    rows_per_epoch: int = 40
    batch_size: int = 8
    concurrency: int = 4
    max_depth: Optional[int] = None
    max_rounds_per_job: int = 8
    min_partial_samples: int = 8
    grace_rounds: int = 2
    monitor_interval: Optional[float] = 1.0
    n_workers: int = 1
    mp_context: str = "fork"
    checkpoint_path: Optional[str] = None
    checkpoint_every: int = 1
    slab_storage: str = "shm"
    slab_dir: Optional[str] = None

    def __post_init__(self) -> None:
        for name in (
            "max_pending",
            "max_running",
            "rows_per_epoch",
            "batch_size",
            "concurrency",
            "max_rounds_per_job",
            "min_partial_samples",
            "n_workers",
            "checkpoint_every",
        ):
            if getattr(self, name) < 1:
                raise ConfigurationError(
                    f"{name} must be >= 1, got {getattr(self, name)}"
                )
        if self.grace_rounds < 0:
            raise ConfigurationError(
                f"grace_rounds must be >= 0, got {self.grace_rounds}"
            )
        if self.monitor_interval is not None and self.monitor_interval <= 0:
            raise ConfigurationError(
                f"monitor_interval must be > 0 or None, got {self.monitor_interval}"
            )
        if self.slab_storage not in SLAB_STORAGES:
            raise ConfigurationError(
                f"unknown slab_storage {self.slab_storage!r}; "
                f"valid: {', '.join(SLAB_STORAGES)}"
            )
        if self.slab_storage == "file" and self.slab_dir is None:
            raise ConfigurationError("slab_storage='file' requires slab_dir")


class SamplingService:
    """Multi-tenant estimation over one shared discovered graph.

    Parameters
    ----------
    api:
        The charged :class:`~repro.osn.api.SocialNetworkAPI` every tenant
        shares; its counter is the global source of truth the
        :class:`~repro.osn.accounting.TenantLedger` attributes.
    start:
        Crawl origin (jobs may walk from any discovered start).
    config:
        :class:`ServiceConfig` knobs.
    clock / latency:
        Simulated-time plumbing for the crawler and monitor — a
        :class:`~repro.crawl.clock.FakeClock` by default, so
        :meth:`run` replays deterministically under
        :func:`~repro.crawl.clock.drive`.
    seed:
        Root of every job's RNG stream (spawned per submission, in
        submission order).

    Use as a context manager or call :meth:`close`; the service holds a
    standing topology lease, a publisher segment, and (for sharded jobs)
    a live process pool until released.
    """

    def __init__(
        self,
        api,
        start: int = 0,
        *,
        config: Optional[ServiceConfig] = None,
        clock: Optional[FakeClock] = None,
        latency: LatencyLike = None,
        seed: RngLike = None,
    ) -> None:
        self.api = api
        self.start = start
        self.config = config if config is not None else ServiceConfig()
        self.clock = clock if clock is not None else FakeClock()
        self.ledger = TenantLedger(api.counter)
        self.metrics = ServiceMetrics()
        self.scheduler = JobScheduler(
            self.ledger,
            max_pending=self.config.max_pending,
            max_running=self.config.max_running,
        )
        self.crawler = AsyncCrawler(
            api,
            start,
            concurrency=self.config.concurrency,
            batch_size=self.config.batch_size,
            max_depth=self.config.max_depth,
            clock=self.clock,
            latency=latency,
        )
        self.publisher = TopologyPublisher(
            api.discovered,
            fetched_only=True,
            storage=self.config.slab_storage,
            slab_dir=self.config.slab_dir,
        )
        self._rng = ensure_rng(seed)
        self._engine: Optional[ShardedWalkEngine] = None
        self._lease: Optional[TopologyLease] = None
        self._job_sequence = 0
        self.jobs: Dict[str, Job] = {}
        self.budget_exhausted = False
        self.epochs_run = 0
        self._serving = False
        self._closed = False

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------
    def _validate(self, spec: EstimationJobSpec) -> None:
        if spec.engine.backend not in SERVICE_BACKENDS:
            raise AdmissionError(
                f"the service runs free-topology backends only "
                f"({', '.join(SERVICE_BACKENDS)}); backend "
                f"{spec.engine.backend!r} issues its own charged queries — "
                f"call repro.core.estimate() directly"
            )

    def _new_job(self, spec: EstimationJobSpec) -> Job:
        self._job_sequence += 1
        job_id = f"job-{self._job_sequence}"
        # One child stream per job, in submission order — determinism does
        # not depend on which tenant's round runs first.
        job = Job(job_id, spec, spawn(self._rng, 1)[0])
        job.submitted_at = self.clock.now
        self.jobs[job_id] = job
        self.metrics.jobs_submitted.inc()
        self.metrics.queue_depth.set(self.scheduler.queue_depth)
        return job

    def submit_nowait(self, spec: EstimationJobSpec) -> JobHandle:
        """Admit *spec* or raise :class:`~repro.errors.AdmissionError`.

        Raises on a full pending queue (backpressure) and on specs the
        service cannot run; nothing is enqueued in either case.
        """
        if self._closed:
            raise ConfigurationError("service is closed")
        try:
            self._validate(spec)
            if self.scheduler.queue_depth >= self.scheduler.max_pending:
                raise AdmissionError(
                    f"pending queue is full ({self.scheduler.max_pending} "
                    f"jobs); retry later or await submit()"
                )
        except AdmissionError:
            self.metrics.jobs_rejected.inc()
            raise
        job = self._new_job(spec)
        self.scheduler.offer(job)
        return job.handle()

    async def submit(self, spec: EstimationJobSpec) -> JobHandle:
        """Admit *spec*, waiting for queue space instead of raising.

        Invalid specs still raise :class:`~repro.errors.AdmissionError`
        immediately — waiting cannot fix them.
        """
        if self._closed:
            raise ConfigurationError("service is closed")
        try:
            self._validate(spec)
        except AdmissionError:
            self.metrics.jobs_rejected.inc()
            raise
        await self.scheduler.wait_for_space()
        job = self._new_job(spec)
        self.scheduler.offer(job)
        return job.handle()

    def cancel(self, job_id: str) -> bool:
        """Cancel a live job; returns False if already terminal/unknown."""
        job = self.jobs.get(job_id)
        if job is None or job.state.terminal:
            return False
        if job.state is JobState.PENDING:
            self.scheduler.pending.remove(job)
        else:
            self.scheduler.retire(job)
        self._resolve(
            job, JobState.CANCELLED, met=False, reason="cancelled", retire=False
        )
        return True

    # ------------------------------------------------------------------
    # The epoch loop
    # ------------------------------------------------------------------
    async def serve(self) -> None:
        """Run epochs until no job is pending or running.

        Safe to call repeatedly (jobs submitted after one serve() drains
        are picked up by the next); concurrent serve() calls are refused.
        """
        if self._closed:
            raise ConfigurationError("service is closed")
        if self._serving:
            raise ConfigurationError("serve() is already running")
        self._serving = True
        monitor: Optional[asyncio.Task] = None
        if self.config.monitor_interval is not None:
            monitor = asyncio.ensure_future(self._monitor())
        try:
            while self.scheduler.has_work:
                progressed = await self._epoch()
                if not progressed:
                    self._preempt_stalled()
                self._maybe_checkpoint()
                # One scheduling point per epoch: lets submitters and
                # monitor interleave at a deterministic boundary.
                await self.clock.sleep(0)
        finally:
            self._serving = False
            if monitor is not None:
                monitor.cancel()
                await asyncio.gather(monitor, return_exceptions=True)

    def run(self, specs: Sequence[EstimationJobSpec]) -> List[JobResult]:
        """Synchronous front end: submit *specs*, serve, return results.

        Drives the service's own clock on a fresh event loop
        (:func:`~repro.crawl.clock.drive`), so the whole multi-tenant run
        is a deterministic function of (specs, seed, latency script).
        """

        async def _main() -> List[JobResult]:
            handles = [self.submit_nowait(spec) for spec in specs]
            await self.serve()
            return [await handle.result() for handle in handles]

        return drive(self.clock, _main())

    async def step(self) -> bool:
        """Run exactly one admit→crawl→publish→rounds epoch.

        The externally driven twin of :meth:`serve`'s loop body — an
        orchestrator (or a checkpoint harness) can interleave epochs with
        its own work, e.g. ``while service.scheduler.has_work: await
        service.step(); service.checkpoint(path)``.  Returns whether the
        epoch made progress; a stalled epoch preempts live jobs exactly
        as :meth:`serve` would.  Epoch boundaries are the safe
        checkpoint instants: no crawl batch is in flight and no round is
        half-absorbed.
        """
        if self._closed:
            raise ConfigurationError("service is closed")
        if self._serving:
            raise ConfigurationError("serve() is already running")
        progressed = await self._epoch()
        if not progressed and self.scheduler.has_work:
            self._preempt_stalled()
        self._maybe_checkpoint()
        return progressed

    def _maybe_checkpoint(self) -> None:
        """Write the periodic checkpoint when the config asks for one."""
        if (
            self.config.checkpoint_path is not None
            and self.epochs_run % self.config.checkpoint_every == 0
        ):
            checkpoint_module.write(self, self.config.checkpoint_path)

    async def _epoch(self) -> bool:
        """One admit→crawl→publish→rounds iteration; False when stalled."""
        self.epochs_run += 1
        progressed = False
        for job in self.scheduler.admit():
            job.state = JobState.RUNNING
            progressed = True
        self.metrics.queue_depth.set(self.scheduler.queue_depth)
        self.metrics.running_jobs.set(len(self.scheduler.running))

        progressed |= await self._crawl_chunk()

        published = None
        if self.api.discovered.fetched_count:
            published = self.publisher.publish(force=self._lease is None)
        if published is not None:
            self.metrics.epochs_published.inc()
            self._swap_lease()
            progressed = True

        if self._lease is None:
            # Nothing fetched and nothing published: no topology will ever
            # exist (every tenant budget-dead before the first row).
            for job in list(self.scheduler.running):
                self._resolve(job, JobState.FAILED, met=False, reason="no-topology")
            return progressed or not self.scheduler.has_work

        for job in list(self.scheduler.running):
            progressed |= self._run_round(job)
        return progressed

    async def _crawl_chunk(self) -> bool:
        """Grow the shared graph by one driver-funded chunk; True if it did."""
        if self.crawler.finished:
            return False
        driver = self.scheduler.next_driver()
        if driver is None:
            return False
        remaining = self.scheduler.tenant_remaining(driver.tenant)
        rows = self.config.rows_per_epoch
        if remaining is not None:
            rows = min(rows, remaining)
        if rows <= 0:
            return False
        rows_before = self.api.discovered.fetched_count
        clock_before = self.clock.now
        set_tenant = getattr(self.api, "set_tenant", None)
        if set_tenant is not None:
            # A resilient API keys its circuit breakers per tenant; point
            # it at whoever is paying for this chunk.
            set_tenant(driver.tenant)
        with self.ledger.attribute(driver.tenant):
            try:
                await self.crawler.crawl_chunk(max_new_rows=rows)
            except QueryBudgetExceededError:
                # The API's own (global) budget ran dry; rows settled
                # before the raise are attributed and published as usual.
                self.budget_exhausted = True
        new_rows = self.api.discovered.fetched_count - rows_before
        self.metrics.crawl_rows.inc(new_rows)
        self.metrics.crawl_seconds.observe(self.clock.now - clock_before)
        self.metrics.record_cache_rate(self.api.query_cost, self.api.raw_calls)
        return new_rows > 0

    def _swap_lease(self) -> None:
        """Pin the newest epoch; re-point the engine; release the old pin.

        Order matters: the engine moves to the new slab *before* the old
        lease is released, so no round can ever observe a retired segment.
        """
        new_lease = self.publisher.acquire()
        if self._engine is not None:
            self._engine.update_topology(new_lease.topology.shared)
        if self._lease is not None:
            self._lease.release()
        self._lease = new_lease

    def _ensure_engine(self) -> ShardedWalkEngine:
        if self._engine is None:
            self._engine = ShardedWalkEngine.from_shared(
                self._lease.topology.shared,
                n_workers=self.config.n_workers,
                mp_context=self.config.mp_context,
            )
        return self._engine

    def _run_round(self, job: Job) -> bool:
        """One WALK-ESTIMATE round for *job* over the pinned epoch."""
        spec = job.spec
        graph = self._lease.graph
        if spec.start not in graph or graph.degree(spec.start) == 0:
            if self.crawler.finished:
                self._resolve(
                    job, JobState.FAILED, met=False, reason="start-not-walkable"
                )
                return True
            return False  # wait for coverage to reach the start
        clock_before = self.clock.now
        if spec.engine.backend == "sharded":
            result = estimate(spec, engine=self._ensure_engine(), seed=job.rng)
        else:
            result = estimate(spec, graph=graph, seed=job.rng)
        # The estimand: true discovered degrees — every accepted node's row
        # is paid for, so this gather is free (§2.4).
        values = self.api.discovered.degrees_of(result.nodes).astype(np.float64)
        with np.errstate(divide="ignore"):
            weights = 1.0 / result.weights
        job.absorb(values, weights)
        job.rounds += 1
        self.metrics.rounds.inc()
        self.metrics.round_seconds.observe(self.clock.now - clock_before)
        self._stream_partial(job)
        self._check_completion(job)
        return True

    def _stream_partial(self, job: Job) -> None:
        est, stderr = job.current_estimate()
        partial = PartialEstimate(
            job_id=job.job_id,
            tenant=job.tenant,
            round_index=job.rounds,
            epoch=self._lease.epoch,
            estimate=est,
            stderr=stderr,
            samples=job.samples,
            query_cost=self.ledger.charged(job.tenant),
            clock_seconds=self.clock.now,
        )
        if job.first_partial_at is None:
            job.first_partial_at = self.clock.now
            self.metrics.first_partial_latency.observe(
                self.clock.now - job.submitted_at
            )
        job.push_partial(partial)
        self.metrics.partials_streamed.inc()

    def _check_completion(self, job: Job) -> None:
        if job.target_met(self.config.min_partial_samples):
            self._resolve(job, JobState.COMPLETED, met=True, reason="error-target")
            return
        if job.rounds >= self.config.max_rounds_per_job:
            self._resolve(job, JobState.COMPLETED, met=False, reason="round-limit")
            return
        remaining = self.scheduler.tenant_remaining(job.tenant)
        if remaining == 0:
            # Budget-dead tenants keep their free refinement grace window;
            # after it, the partial result is the result.
            job.exhausted_rounds += 1
            if job.exhausted_rounds > self.config.grace_rounds:
                self._resolve(
                    job, JobState.PREEMPTED, met=False, reason="budget-exhausted"
                )

    def _preempt_stalled(self) -> None:
        """Resolve every live job when an epoch made no progress at all."""
        for job in list(self.scheduler.running):
            self._resolve(job, JobState.PREEMPTED, met=False, reason="stalled")
        while self.scheduler.pending:
            job = self.scheduler.pending.popleft()
            self._resolve(
                job, JobState.PREEMPTED, met=False, reason="stalled", retire=False
            )

    def _resolve(
        self,
        job: Job,
        state: JobState,
        *,
        met: bool,
        reason: str,
        retire: bool = True,
    ) -> None:
        est, stderr = job.current_estimate()
        result = JobResult(
            job_id=job.job_id,
            tenant=job.tenant,
            state=state,
            estimate=est,
            stderr=stderr,
            samples=job.samples,
            rounds=job.rounds,
            query_cost=self.ledger.charged(job.tenant),
            met_target=met,
            reason=reason,
            clock_seconds=self.clock.now,
        )
        if retire and job in self.scheduler.running:
            self.scheduler.retire(job)
        job.resolve(result)
        counters = {
            JobState.COMPLETED: self.metrics.jobs_completed,
            JobState.PREEMPTED: self.metrics.jobs_preempted,
            JobState.FAILED: self.metrics.jobs_failed,
            JobState.CANCELLED: self.metrics.jobs_cancelled,
        }
        counters[state].inc()
        self.metrics.job_turnaround.observe(self.clock.now - job.submitted_at)
        self.metrics.running_jobs.set(len(self.scheduler.running))

    async def _monitor(self) -> None:
        """Background worker: one metrics sample per interval, forever.

        Cancelled by :meth:`serve` on exit; sleeps on the service clock so
        samples land at deterministic simulated times.
        """
        while True:
            await self.clock.sleep(self.config.monitor_interval)
            self.metrics.observe_monitor(
                clock_seconds=self.clock.now,
                queue_depth=self.scheduler.queue_depth,
                running_jobs=len(self.scheduler.running),
                query_cost=self.api.query_cost,
                raw_calls=self.api.raw_calls,
                published_epochs=self.metrics.epochs_published.value,
            )

    # ------------------------------------------------------------------
    # Checkpoint / resume
    # ------------------------------------------------------------------
    def checkpoint(self, path: Optional[Union[str, Path]] = None) -> Dict[str, Any]:
        """Snapshot the campaign; optionally write it atomically to *path*.

        Call at an epoch boundary (between :meth:`step` calls, or after
        :meth:`serve` returns) — see :mod:`repro.service.checkpoint` for
        exactly what the document carries.  Returns the document either
        way.
        """
        document = checkpoint_module.capture(self)
        if path is not None:
            checkpoint_module.write(self, path)
        return document

    @classmethod
    def resume(
        cls,
        api,
        source: Union[str, Path, Mapping[str, Any]],
        *,
        clock: Optional[FakeClock] = None,
        latency: LatencyLike = None,
    ) -> "SamplingService":
        """Rebuild a service from a checkpoint, paying zero extra queries.

        *source* is a checkpoint path or an in-memory document from
        :meth:`checkpoint`; *api* must be a fresh charged API over the
        same hidden network, its discovered store and counter untouched
        (both are restored from the snapshot — §2.4 makes every
        already-paid-for row free again).  The resumed service continues
        the campaign bit-identically to one that never stopped: same
        estimates, same partial stream, same counter and ledger state —
        the pin ``tests/faults/test_service_checkpoint.py`` asserts.
        *latency* must be the original campaign's script; the restored
        batch counter keeps its cycle position.
        """
        if isinstance(source, (str, Path)):
            document = checkpoint_module.load(source)
        else:
            document = checkpoint_module.validate(source)
        config = ServiceConfig(**document["config"])
        service = cls(
            api,
            start=int(document["start"]),
            config=config,
            clock=clock,
            latency=latency,
        )
        checkpoint_module.restore(service, document)
        return service

    # ------------------------------------------------------------------
    # Lifetime
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Release engine, standing lease, publisher — in that order.

        The engine's worker pool detaches first; then the standing lease
        is released *before* ``publisher.close()`` so the final epoch's
        segment is actually unlinked rather than deferred to a lease
        nobody holds anymore — the ``/dev/shm`` hygiene contract.
        Idempotent.
        """
        if self._closed:
            return
        self._closed = True
        if self._engine is not None:
            self._engine.close()
            self._engine = None
        if self._lease is not None:
            self._lease.release()
            self._lease = None
        self.publisher.close()

    def __enter__(self) -> "SamplingService":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:
        return (
            f"SamplingService(jobs={len(self.jobs)}, "
            f"pending={self.scheduler.queue_depth}, "
            f"running={len(self.scheduler.running)}, "
            f"fetched={self.api.discovered.fetched_count})"
        )


# ----------------------------------------------------------------------
# Optional HTTP adapter
# ----------------------------------------------------------------------
def create_app(service: SamplingService):
    """FastAPI adapter over an in-process service (optional dependency).

    Exposes ``POST /jobs`` (submit an
    :class:`~repro.core.dispatch.EstimationJobSpec` JSON document),
    ``GET /jobs/{job_id}`` (state + partials), ``GET /jobs/{job_id}/stream``
    (the recorded partial-estimate stream as NDJSON, terminated by the
    result once resolved), and ``GET /metrics``.
    The core service never imports FastAPI; environments without it get a
    :class:`~repro.errors.ConfigurationError` here and full functionality
    through :class:`SamplingService` directly.
    """
    try:
        import fastapi
    except ImportError as exc:
        raise ConfigurationError(
            "the HTTP adapter requires fastapi (optional dependency); "
            "use SamplingService directly or install fastapi"
        ) from exc
    return _build_app(fastapi, service)


def _build_app(fastapi, service: SamplingService):  # pragma: no cover
    app = fastapi.FastAPI(title="walk-not-wait sampling service")

    @app.post("/jobs")
    def submit(spec: dict):
        try:
            handle = service.submit_nowait(EstimationJobSpec.from_dict(spec))
        except AdmissionError as exc:
            raise fastapi.HTTPException(status_code=429, detail=str(exc)) from exc
        except ConfigurationError as exc:
            raise fastapi.HTTPException(status_code=422, detail=str(exc)) from exc
        return {"job_id": handle.job_id, "state": handle.state.value}

    @app.get("/jobs/{job_id}")
    def status(job_id: str):
        job = service.jobs.get(job_id)
        if job is None:
            raise fastapi.HTTPException(status_code=404, detail="unknown job")
        body = {
            "job_id": job.job_id,
            "tenant": job.tenant,
            "state": job.state.value,
            "rounds": job.rounds,
            "samples": job.samples,
            "partials": [vars(p) for p in job.partials],
        }
        if job.result is not None:
            result = vars(job.result).copy()
            result["state"] = job.result.state.value
            body["result"] = result
        return body

    @app.get("/jobs/{job_id}/stream")
    def stream(job_id: str):
        from fastapi.responses import StreamingResponse

        job = service.jobs.get(job_id)
        if job is None:
            raise fastapi.HTTPException(status_code=404, detail="unknown job")

        def ndjson():
            for partial in job.partials:
                yield json.dumps(vars(partial)) + "\n"
            if job.result is not None:
                result = vars(job.result).copy()
                result["state"] = job.result.state.value
                yield json.dumps({"result": result}) + "\n"

        return StreamingResponse(ndjson(), media_type="application/x-ndjson")

    @app.get("/metrics")
    def metrics():
        return service.metrics.snapshot()

    return app
