"""Command-line interface.

Usage examples::

    walk-not-wait list
    walk-not-wait run figure6 --scale quick --seed 7
    walk-not-wait run table1 --csv out.csv
    walk-not-wait run all --scale quick
    walk-not-wait estimate --job job.json --dataset ba_synthetic --json
    walk-not-wait bench run --suite smoke --out bench_results
    walk-not-wait bench check --baseline . --current bench_results

(Equivalently: ``python -m repro ...``; ``bench`` forwards verbatim to
``python -m repro.bench``, the regression-gating benchmark harness.)

The ``estimate`` subcommand is the CLI face of the unified job API: it
loads an :class:`~repro.core.dispatch.EstimationJobSpec` JSON document
(``-`` for stdin), builds the requested dataset surrogate, routes the job
through :func:`repro.core.estimate` on the backend the spec names, and
prints the importance-weighted degree estimate.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro._version import __version__
from repro.experiments.registry import EXPERIMENTS, run_experiment
from repro.experiments.reporting import render_result, result_to_csv


def build_parser() -> argparse.ArgumentParser:
    """The CLI's argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="walk-not-wait",
        description=(
            "Reproduction of 'Walk, Not Wait: Faster Sampling Over Online "
            "Social Networks' (VLDB 2015)"
        ),
    )
    parser.add_argument("--version", action="version", version=__version__)
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("list", help="list available experiments")

    datasets = subparsers.add_parser(
        "datasets", help="build the dataset surrogates and print their stats"
    )
    datasets.add_argument("--seed", type=int, default=0, help="build seed")
    datasets.add_argument(
        "--name",
        default=None,
        help="single dataset to summarize (default: all)",
    )

    run = subparsers.add_parser("run", help="run an experiment (or 'all')")
    run.add_argument("experiment", help="experiment id or 'all'")
    run.add_argument(
        "--scale",
        choices=("quick", "full"),
        default="quick",
        help="workload size (quick: minutes; full: paper-scale)",
    )
    run.add_argument("--seed", type=int, default=None, help="master seed")
    run.add_argument(
        "--csv",
        type=Path,
        default=None,
        help="also write results as CSV to this path",
    )

    est = subparsers.add_parser(
        "estimate",
        help="run one estimation job spec (JSON) through the unified API",
    )
    est.add_argument(
        "--job",
        required=True,
        help="path to an EstimationJobSpec JSON document ('-' for stdin)",
    )
    est.add_argument(
        "--dataset",
        default="ba_synthetic",
        help="dataset surrogate to estimate over (see 'datasets')",
    )
    est.add_argument(
        "--dataset-seed", type=int, default=0, help="dataset build seed"
    )
    est.add_argument(
        "--seed",
        type=int,
        default=None,
        help="override the spec's own seed for this run",
    )
    est.add_argument(
        "--json",
        action="store_true",
        help="print the result as a JSON document instead of text",
    )

    bench = subparsers.add_parser(
        "bench",
        help="regression-gating benchmark harness (run / check / append)",
        add_help=False,
    )
    bench.add_argument(
        "bench_args",
        nargs=argparse.REMAINDER,
        help="arguments forwarded to `python -m repro.bench`",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    """Entry point; returns a process exit code."""
    try:
        return _dispatch(argv)
    except BrokenPipeError:
        # Output piped into a consumer that closed early (e.g. `head`);
        # exit quietly like any well-behaved CLI.
        import os

        os.close(sys.stdout.fileno())
        return 0


def _dispatch(argv: list[str] | None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.command == "list":
        for experiment_id in sorted(EXPERIMENTS):
            doc = (EXPERIMENTS[experiment_id].__doc__ or "").strip().splitlines()
            summary = doc[0] if doc else ""
            print(f"{experiment_id:20s} {summary}")
        return 0

    if args.command == "datasets":
        from repro.datasets.registry import DATASET_BUILDERS, build_dataset
        from repro.graphs.statistics import summarize

        names = [args.name] if args.name else sorted(DATASET_BUILDERS)
        for name in names:
            dataset = build_dataset(name, seed=args.seed)
            summary = summarize(dataset.graph, seed=args.seed)
            print(f"== {name} ({dataset.paper_reference or 'no reference'}) ==")
            for metric, value in summary.as_rows():
                print(f"  {metric:16s} {value}")
            for aggregate, truth in sorted(dataset.aggregates.items()):
                print(f"  AVG {aggregate:12s} {truth:.4f}")
            print()
        return 0

    if args.command == "run":
        ids = sorted(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
        csv_chunks: list[str] = []
        for experiment_id in ids:
            result = run_experiment(experiment_id, scale=args.scale, seed=args.seed)
            print(render_result(result))
            print()
            if args.csv is not None:
                csv_chunks.append(result_to_csv(result))
        if args.csv is not None:
            args.csv.write_text("".join(csv_chunks), encoding="utf-8")
            print(f"wrote CSV to {args.csv}", file=sys.stderr)
        return 0

    if args.command == "bench":
        from repro.bench.cli import main as bench_main

        return bench_main(args.bench_args)

    if args.command == "estimate":
        import json

        report = run_job_spec(
            _load_job_spec(args.job),
            dataset=args.dataset,
            dataset_seed=args.dataset_seed,
            seed=args.seed,
        )
        if args.json:
            print(json.dumps(report, indent=2, sort_keys=True))
        else:
            spec_doc = report["spec"]
            print(f"== estimate over {report['dataset']} ==")
            print(f"  design           {json.dumps(spec_doc['design'])}")
            print(f"  backend          {spec_doc['engine']['backend']}")
            print(f"  accepted         {report['accepted']}/{report['attempts']}")
            print(f"  estimate         {report['estimate']:.4f}")
            print(f"  stderr           {report['stderr']:.4f}")
            print(f"  query cost       {report['query_cost']}")
        return 0

    parser.error(f"unknown command {args.command!r}")
    return 2  # pragma: no cover - parser.error raises


def _load_job_spec(path: str):
    """Read an :class:`~repro.core.dispatch.EstimationJobSpec` JSON doc."""
    from repro.core.dispatch import EstimationJobSpec

    raw = sys.stdin.read() if path == "-" else Path(path).read_text("utf-8")
    return EstimationJobSpec.from_json(raw)


def run_job_spec(spec, *, dataset="ba_synthetic", dataset_seed=0, seed=None):
    """Run one job spec against a dataset surrogate; return a JSON-safe dict.

    The backend the spec names decides the resources: scalar/charged specs
    get a fresh charged :class:`~repro.osn.api.SocialNetworkAPI`, batch
    specs the compiled CSR, sharded specs a transient
    :class:`~repro.walks.parallel.ShardedWalkEngine`.  All routes go
    through :func:`repro.core.estimate` — the CLI never touches a legacy
    front end.
    """
    import numpy as np

    from repro.core.dispatch import estimate
    from repro.datasets.registry import build_dataset
    from repro.osn.api import SocialNetworkAPI
    from repro.walks.parallel import ShardedWalkEngine

    graph = build_dataset(dataset, seed=dataset_seed).graph
    backend = spec.engine.backend
    api = None
    if backend in ("scalar", "charged"):
        api = SocialNetworkAPI(graph)
        result = estimate(spec, api=api, seed=seed)
    elif backend == "sharded":
        engine = ShardedWalkEngine(
            graph.compile(),
            n_workers=spec.engine.n_workers or 1,
            mp_context=spec.engine.mp_context,
            slab_storage=spec.engine.slab_storage,
            slab_dir=spec.engine.slab_dir,
        )
        with engine:
            result = estimate(spec, engine=engine, seed=seed)
    else:
        result = estimate(spec, graph=graph.compile(), seed=seed)

    values = np.array(
        [graph.degree(int(node)) for node in result.nodes], dtype=np.float64
    )
    with np.errstate(divide="ignore"):
        weights = 1.0 / result.weights
    total = float(weights.sum())
    if values.size and total > 0:
        mean = float((weights * values).sum() / total)
        stderr = float(np.sqrt(((weights * (values - mean)) ** 2).sum()) / total)
    else:
        mean, stderr = float("nan"), float("inf")
    return {
        "dataset": dataset,
        "spec": spec.to_dict(),
        "accepted": int(result.accepted),
        "attempts": int(result.attempts),
        "acceptance_rate": float(result.acceptance_rate),
        "estimate": mean,
        "stderr": stderr,
        "query_cost": int(api.query_cost if api is not None else result.query_cost),
        "walk_steps": int(result.walk_steps),
    }


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
