"""Command-line interface.

Usage examples::

    walk-not-wait list
    walk-not-wait run figure6 --scale quick --seed 7
    walk-not-wait run table1 --csv out.csv
    walk-not-wait run all --scale quick

(Equivalently: ``python -m repro ...``.)
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro._version import __version__
from repro.experiments.registry import EXPERIMENTS, run_experiment
from repro.experiments.reporting import render_result, result_to_csv


def build_parser() -> argparse.ArgumentParser:
    """The CLI's argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="walk-not-wait",
        description=(
            "Reproduction of 'Walk, Not Wait: Faster Sampling Over Online "
            "Social Networks' (VLDB 2015)"
        ),
    )
    parser.add_argument("--version", action="version", version=__version__)
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("list", help="list available experiments")

    datasets = subparsers.add_parser(
        "datasets", help="build the dataset surrogates and print their stats"
    )
    datasets.add_argument("--seed", type=int, default=0, help="build seed")
    datasets.add_argument(
        "--name",
        default=None,
        help="single dataset to summarize (default: all)",
    )

    run = subparsers.add_parser("run", help="run an experiment (or 'all')")
    run.add_argument("experiment", help="experiment id or 'all'")
    run.add_argument(
        "--scale",
        choices=("quick", "full"),
        default="quick",
        help="workload size (quick: minutes; full: paper-scale)",
    )
    run.add_argument("--seed", type=int, default=None, help="master seed")
    run.add_argument(
        "--csv",
        type=Path,
        default=None,
        help="also write results as CSV to this path",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    """Entry point; returns a process exit code."""
    try:
        return _dispatch(argv)
    except BrokenPipeError:
        # Output piped into a consumer that closed early (e.g. `head`);
        # exit quietly like any well-behaved CLI.
        import os

        os.close(sys.stdout.fileno())
        return 0


def _dispatch(argv: list[str] | None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.command == "list":
        for experiment_id in sorted(EXPERIMENTS):
            doc = (EXPERIMENTS[experiment_id].__doc__ or "").strip().splitlines()
            summary = doc[0] if doc else ""
            print(f"{experiment_id:20s} {summary}")
        return 0

    if args.command == "datasets":
        from repro.datasets.registry import DATASET_BUILDERS, build_dataset
        from repro.graphs.statistics import summarize

        names = [args.name] if args.name else sorted(DATASET_BUILDERS)
        for name in names:
            dataset = build_dataset(name, seed=args.seed)
            summary = summarize(dataset.graph, seed=args.seed)
            print(f"== {name} ({dataset.paper_reference or 'no reference'}) ==")
            for metric, value in summary.as_rows():
                print(f"  {metric:16s} {value}")
            for aggregate, truth in sorted(dataset.aggregates.items()):
                print(f"  AVG {aggregate:12s} {truth:.4f}")
            print()
        return 0

    if args.command == "run":
        ids = sorted(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
        csv_chunks: list[str] = []
        for experiment_id in ids:
            result = run_experiment(experiment_id, scale=args.scale, seed=args.seed)
            print(render_result(result))
            print()
            if args.csv is not None:
                csv_chunks.append(result_to_csv(result))
        if args.csv is not None:
            args.csv.write_text("".join(csv_chunks), encoding="utf-8")
            print(f"wrote CSV to {args.csv}", file=sys.stderr)
        return 0

    parser.error(f"unknown command {args.command!r}")
    return 2  # pragma: no cover - parser.error raises


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
