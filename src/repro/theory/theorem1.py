"""Theorem 1's closed forms (paper §4.1).

The theorem models the walk-then-correct cost with the spectral mixing
bound ``|p_t(u) - π(u)| ≤ (1-λ)^t · d_max`` (Eq. 9) and shows the expected
query cost per sample of IDEAL-WALK,

    f(t) = t · (Γ - Δ) / (Γ - (1-λ)^t · d_max),            (Eq. 15)

is minimized at

    t_opt = -log( -(1/Γ) · W(-Γ/(e·d_max)) · d_max ) / log(1-λ),   (Eq. 7/18)

with ``W`` the Lambert-W function — notably *independent of Δ*: however
stringent the bias requirement (any ``0 < Δ < Γ``), the same short walk is
optimal and IDEAL-WALK beats the input walk, whose cost is

    c_RW = log(Δ/d_max) / log(1-λ).                        (Eq. 13)

``Γ`` is the theorem's acceptance-floor parameter (the scale at which the
min-ratio of the rejection step is measured); the paper leaves it abstract,
and these functions take it explicitly.
"""

from __future__ import annotations

import numpy as np
from scipy.special import lambertw

from repro.errors import ConfigurationError


def _validate(spectral_gap: float, d_max: float, gamma: float) -> None:
    if not 0.0 < spectral_gap < 1.0:
        raise ConfigurationError(
            f"spectral gap must be in (0, 1), got {spectral_gap}"
        )
    if d_max < 1:
        raise ConfigurationError(f"d_max must be >= 1, got {d_max}")
    if gamma <= 0:
        raise ConfigurationError(f"gamma must be positive, got {gamma}")


def cost_model(
    t: float, spectral_gap: float, d_max: float, gamma: float, delta: float
) -> float:
    """Theorem 1's cost-per-sample model ``f(t)`` (Eq. 15).

    Returns ∞ while the denominator ``Γ - (1-λ)^t·d_max`` is non-positive,
    i.e. while the mixing bound cannot yet guarantee a positive acceptance.
    """
    _validate(spectral_gap, d_max, gamma)
    if not 0.0 < delta < gamma:
        raise ConfigurationError(f"need 0 < delta < gamma, got delta={delta}")
    if t <= 0:
        raise ConfigurationError(f"t must be positive, got {t}")
    denominator = gamma - (1.0 - spectral_gap) ** t * d_max
    if denominator <= 0.0:
        return float("inf")
    return t * (gamma - delta) / denominator


def optimal_walk_length_closed_form(
    spectral_gap: float, d_max: float, gamma: float
) -> float:
    """``t_opt`` per Eq. 7 — via Lambert W, independent of Δ.

    The W argument ``-Γ/(e·d_max)`` lies in ``(-1/e, 0)`` whenever
    ``Γ < d_max``, where both real branches exist; the branch ``W₋₁`` is the
    one that makes the log argument land in (0, 1) and hence ``t_opt > 0``
    (verified against the numeric minimizer in the test suite).
    """
    _validate(spectral_gap, d_max, gamma)
    argument = -gamma / (np.e * d_max)
    if argument <= -1.0 / np.e:
        raise ConfigurationError(
            f"gamma={gamma} too large relative to d_max={d_max}: "
            "Lambert-W argument outside (-1/e, 0)"
        )
    candidates = []
    for branch in (0, -1):
        w_value = lambertw(argument, k=branch)
        if abs(w_value.imag) > 1e-12:
            continue
        inner = -(1.0 / gamma) * w_value.real * d_max
        if inner <= 0.0:
            continue
        # Paper Eq. 7 verbatim, leading minus included.
        t_opt = -np.log(inner) / np.log(1.0 - spectral_gap)
        if t_opt > 0.0:
            candidates.append(float(t_opt))
    if not candidates:
        raise ConfigurationError(
            "no real positive t_opt; parameters outside the theorem's regime"
        )
    # Only the W_{-1} branch yields the cost minimum (the principal branch
    # lands on the stationarity condition's other root, where the modeled
    # acceptance is still zero); when both qualify, pick by modeled cost.
    if len(candidates) == 2:
        delta = gamma / 2.0
        candidates.sort(
            key=lambda t: cost_model(t, spectral_gap, d_max, gamma, delta)
        )
    return candidates[0]


def input_walk_cost_bound(spectral_gap: float, d_max: float, delta: float) -> float:
    """``c_RW = log(Δ/d_max)/log(1-λ)`` (Eq. 13): steps until the mixing
    bound certifies ℓ∞ error ≤ Δ."""
    if delta <= 0:
        raise ConfigurationError(f"delta must be positive, got {delta}")
    if d_max < 1:
        raise ConfigurationError(f"d_max must be >= 1, got {d_max}")
    if not 0.0 < spectral_gap < 1.0:
        raise ConfigurationError(f"spectral gap must be in (0, 1), got {spectral_gap}")
    if delta >= d_max:
        return 0.0  # The bound is already satisfied at t = 0.
    return float(np.log(delta / d_max) / np.log(1.0 - spectral_gap))


def cost_ratio_bound(
    spectral_gap: float, d_max: float, gamma: float, delta: float
) -> float:
    """Upper bound on ``c / c_RW`` (Theorem 1, Eq. 8).

    Values below 1 certify that IDEAL-WALK beats the input walk under the
    theorem's model for these parameters.
    """
    _validate(spectral_gap, d_max, gamma)
    if not 0.0 < delta < gamma:
        raise ConfigurationError(f"need 0 < delta < gamma, got delta={delta}")
    t_opt = optimal_walk_length_closed_form(spectral_gap, d_max, gamma)
    numerator = cost_model(t_opt, spectral_gap, d_max, gamma, delta)
    denominator = input_walk_cost_bound(spectral_gap, d_max, delta)
    if denominator <= 0:
        return float("inf")
    return numerator / denominator
