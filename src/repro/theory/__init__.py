"""Analytic results: Theorem 1's closed forms and the §4.2 case studies."""

from repro.theory.theorem1 import (
    cost_model,
    cost_ratio_bound,
    input_walk_cost_bound,
    optimal_walk_length_closed_form,
)
from repro.theory.case_studies import (
    CASE_STUDY_MODELS,
    build_case_study_graph,
    cost_curve,
    savings_curve,
)

__all__ = [
    "cost_model",
    "optimal_walk_length_closed_form",
    "input_walk_cost_bound",
    "cost_ratio_bound",
    "CASE_STUDY_MODELS",
    "build_case_study_graph",
    "cost_curve",
    "savings_curve",
]
