"""The §4.2 case studies: five graph models under IDEAL-WALK.

Reproduces the machinery behind Figure 2 (cost per sample vs walk length at
n ≈ 31) and Figure 3 (query-cost saving vs graph size 4..128) over the
paper's five models: barbell, cycle, hypercube, balanced binary tree, and
Barabási–Albert.

Sizes are snapped per model to the nearest feasible value (a hypercube
needs ``2^k`` nodes, the paper's barbell needs odd n, a balanced binary
tree has ``2^(h+1)-1`` nodes) — the same accommodation the paper makes when
it swaps the 31-node hypercube for a 32-node one.

Walks use a lazy SRW (laziness 0.05) so periodic models (cycle with even n,
trees, hypercubes are bipartite) have well-defined limiting behaviour; the
paper's footnote 1 makes the same assumption ("each node has a nonzero ...
probability to transit to itself").
"""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.core.ideal import IdealWalk
from repro.errors import ConfigurationError
from repro.graphs.generators import (
    balanced_tree_graph,
    barabasi_albert_graph,
    barbell_graph,
    cycle_graph,
    hypercube_graph,
)
from repro.graphs.graph import Graph
from repro.walks.transitions import LazyWalk, SimpleRandomWalk, TransitionDesign

#: Model name -> builder taking a requested node count.
CASE_STUDY_MODELS: Dict[str, Callable[[int], Graph]] = {}


def _register(name: str):
    def decorator(builder: Callable[[int], Graph]):
        CASE_STUDY_MODELS[name] = builder
        return builder

    return decorator


@_register("barbell")
def _barbell(n: int) -> Graph:
    size = max(5, n if n % 2 == 1 else n + 1)
    return barbell_graph(size)


@_register("cycle")
def _cycle(n: int) -> Graph:
    return cycle_graph(max(3, n))


@_register("hypercube")
def _hypercube(n: int) -> Graph:
    k = max(1, round(__import__("math").log2(max(2, n))))
    return hypercube_graph(k)


@_register("tree")
def _tree(n: int) -> Graph:
    # 2^(h+1) - 1 nodes; choose h so the node count is closest to n.
    import math

    h = max(1, round(math.log2(n + 1)) - 1)
    return balanced_tree_graph(h)


@_register("barabasi")
def _barabasi(n: int) -> Graph:
    return barabasi_albert_graph(max(5, n), m=3, seed=31)


def build_case_study_graph(model: str, n: int) -> Graph:
    """A graph of the named paper model with ≈ *n* nodes.

    Raises
    ------
    ConfigurationError
        For unknown model names (valid: barbell, cycle, hypercube, tree,
        barabasi).
    """
    builder = CASE_STUDY_MODELS.get(model)
    if builder is None:
        raise ConfigurationError(
            f"unknown case-study model {model!r}; valid: "
            + ", ".join(sorted(CASE_STUDY_MODELS))
        )
    return builder(n)


def default_design() -> TransitionDesign:
    """The case studies' input walk: slightly lazy SRW (see module doc)."""
    return LazyWalk(SimpleRandomWalk(), laziness=0.05)


def cost_curve(
    model: str,
    n: int = 31,
    walk_lengths: List[int] | None = None,
    start: int = 0,
) -> Dict[int, float]:
    """Figure 2 series: ``{t: expected cost per sample}`` for one model."""
    graph = build_case_study_graph(model, n).relabeled()
    ideal = IdealWalk(graph, default_design(), start=start)
    if walk_lengths is None:
        walk_lengths = [2**i for i in range(8)]  # 1..128 log-spaced
    return {t: ideal.expected_cost_per_sample(t) for t in walk_lengths}


def savings_curve(
    model: str,
    sizes: List[int] | None = None,
    relative_delta: float = 0.1,
    start: int = 0,
) -> Dict[int, float]:
    """Figure 3 series: ``{n: query-cost saving}`` for one model.

    Saving is ``1 - c(t_opt)/c_RW`` with both costs computed exactly by the
    oracle; the input walk's burn-in requirement is an ℓ∞ error of
    ``relative_delta`` times the smallest target probability, so the
    requirement scales with graph size.  Values are fractions in (-∞, 1);
    the figure reports percent.
    """
    if sizes is None:
        sizes = [8, 16, 32, 64, 128]
    result: Dict[int, float] = {}
    for n in sizes:
        graph = build_case_study_graph(model, n).relabeled()
        ideal = IdealWalk(graph, default_design(), start=start)
        result[graph.number_of_nodes()] = ideal.savings(relative_delta=relative_delta)
    return result
