"""One front door for every WALK-ESTIMATE engine: ``estimate(job)``.

PRs 1–5 grew five separately-shaped estimation entry points — the scalar
charged sampler (:class:`~repro.core.walk_estimate.WalkEstimateSampler`),
its batched-backward charged variant (the PR 4 ``batch_backward`` flag),
the free-graph batch rounds
(:func:`~repro.core.walk_estimate.walk_estimate_batch` /
:func:`~repro.core.long_run_we.long_run_walk_estimate_batch`), and the
process-sharded forms
(:func:`~repro.core.sharded.walk_estimate_sharded` /
:func:`~repro.core.sharded.long_run_walk_estimate_sharded`).  Each is the
right tool for one regime, but a *caller* — the CLI, the serving layer,
a notebook — should not have to know five signatures to pick one.

This module is the unification:

* :class:`EngineConfig` names the regime — ``backend`` (``scalar`` /
  ``charged`` / ``batch`` / ``sharded``) × ``long_run`` — plus the
  engine-shape knobs (worker count, start method, the PR 4
  ``batch_backward`` flag);
* :class:`EstimationJobSpec` is one complete, JSON-round-trippable job
  description: transition design, sample count, estimand, error target,
  query budget, tenant, seed, walk knobs, engine config.  It is the wire
  format of :mod:`repro.service` and the file format of the
  ``walk-not-wait estimate`` CLI — one schema for both;
* :func:`estimate` dispatches a spec to the matching front end and wraps
  the native result in an :class:`EstimateResult` with normalized
  accessors.

**Parity contract.**  The dispatcher adds *zero* behavior: for any spec it
calls exactly one of the historical front ends with the same arguments and
the same seed, so its raw output is bit-identical to the direct call —
pinned per engine row in ``tests/core/test_dispatch.py``.  The old entry
points remain importable as the compatibility surface; new code should
route through :func:`estimate`.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field, replace
from typing import Any, Dict, Mapping, Optional, Union

import numpy as np

from repro.core.config import WalkEstimateConfig
from repro.core.long_run_we import (
    LongRunWalkEstimateSampler,
    long_run_walk_estimate_batch,
)
from repro.core.sharded import (
    long_run_walk_estimate_sharded,
    walk_estimate_sharded,
)
from repro.core.walk_estimate import (
    BatchWalkEstimateResult,
    WalkEstimateSampler,
    walk_estimate_batch,
)
from repro.errors import ConfigurationError
from repro.graphs.csr import CSRGraph
from repro.graphs.graph import Graph
from repro.graphs.shm import STORAGES as SLAB_STORAGES
from repro.rng import RngLike
from repro.walks.kernels import require_backend as require_kernel_backend
from repro.walks.samplers import SampleBatch
from repro.walks.transitions import (
    LazyWalk,
    MaxDegreeWalk,
    MetropolisHastingsWalk,
    SimpleRandomWalk,
    TransitionDesign,
)

#: Backends the dispatcher knows.  ``charged`` is the scalar sampler with
#: the PR 4 ``batch_backward`` flag forced on — the batched-accounting
#: charged-API regime of the ROADMAP engine table.
BACKENDS = ("scalar", "charged", "batch", "sharded")

#: Estimands the serving layer can evaluate for free (from the discovered
#: store, no API charges).  The spec carries the name; the service maps it.
ESTIMANDS = ("degree",)


# ----------------------------------------------------------------------
# Transition-design specs (the JSON form of a TransitionDesign)
# ----------------------------------------------------------------------
def design_from_spec(spec: Union[str, Mapping[str, Any]]) -> TransitionDesign:
    """Build a transition design from its JSON-safe spec.

    Accepted forms::

        "srw"                                   # shorthand for {"name": "srw"}
        {"name": "mhrw"}
        {"name": "maxdeg", "max_degree": 40}
        {"name": "lazy", "laziness": 0.5, "inner": "srw"}   # inner nests

    Only the WALK-ESTIMATE-capable designs are constructible here (SRW,
    MHRW, LazyWalk over any of them, MaxDegreeWalk) — the rows of the
    ROADMAP engine table the batch/sharded front ends support.
    """
    if isinstance(spec, str):
        spec = {"name": spec}
    if not isinstance(spec, Mapping) or "name" not in spec:
        raise ConfigurationError(
            f"design spec must be a name or a mapping with a 'name', got {spec!r}"
        )
    name = spec["name"]
    extras = {k: v for k, v in spec.items() if k != "name"}
    if name == "srw":
        _reject_extras(name, extras)
        return SimpleRandomWalk()
    if name == "mhrw":
        _reject_extras(name, extras)
        return MetropolisHastingsWalk()
    if name == "maxdeg":
        missing = {"max_degree"} - set(extras)
        if missing:
            raise ConfigurationError("maxdeg design spec needs 'max_degree'")
        _reject_extras(name, {k: v for k, v in extras.items() if k != "max_degree"})
        return MaxDegreeWalk(max_degree=int(extras["max_degree"]))
    if name == "lazy":
        if "inner" not in extras:
            raise ConfigurationError("lazy design spec needs an 'inner' design")
        laziness = float(extras.get("laziness", 0.5))
        unknown = set(extras) - {"inner", "laziness"}
        if unknown:
            _reject_extras(name, {k: extras[k] for k in unknown})
        return LazyWalk(design_from_spec(extras["inner"]), laziness=laziness)
    raise ConfigurationError(
        f"unknown design {name!r}; valid: srw, mhrw, maxdeg, lazy"
    )


def _reject_extras(name: str, extras: Mapping[str, Any]) -> None:
    if extras:
        raise ConfigurationError(
            f"unexpected keys for design {name!r}: {sorted(extras)}"
        )


def design_to_spec(design: TransitionDesign) -> Dict[str, Any]:
    """The inverse of :func:`design_from_spec`: a JSON-safe design spec."""
    if isinstance(design, SimpleRandomWalk):
        return {"name": "srw"}
    if isinstance(design, MetropolisHastingsWalk):
        return {"name": "mhrw"}
    if isinstance(design, MaxDegreeWalk):
        return {"name": "maxdeg", "max_degree": int(design.max_degree)}
    if isinstance(design, LazyWalk):
        return {
            "name": "lazy",
            "laziness": float(design.laziness),
            "inner": design_to_spec(design.inner),
        }
    raise ConfigurationError(
        f"design {design!r} has no spec form (not WALK-ESTIMATE-capable)"
    )


# ----------------------------------------------------------------------
# Engine selection
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class EngineConfig:
    """Which estimation engine a job runs on, and its shape.

    Attributes
    ----------
    backend:
        ``scalar`` — the per-query charged sampler over a
        :class:`~repro.osn.api.SocialNetworkAPI`; ``charged`` — the same
        sampler with ``batch_backward`` forced on (each candidate's
        backward repetitions advance together, one accounting settlement
        per depth level — the PR 4 flag, folded in here); ``batch`` — the
        vectorized free-graph round over a compiled
        :class:`~repro.graphs.csr.CSRGraph`; ``sharded`` — the same round
        fanned over a :class:`~repro.walks.parallel.ShardedWalkEngine`.
    long_run:
        Segment one (or K) continuous walks instead of restarting per
        sample (§6.1 future work) — selects the ``long_run_*`` twin of
        the chosen backend.  Not available for ``charged``.
    n_workers / mp_context:
        Engine shape used when the *caller* asks :func:`estimate` to own
        a sharded engine's lifetime (the CLI does); ignored when an
        engine is passed in.
    slab_storage / slab_dir:
        Slab backend for a caller-owned sharded engine — ``"shm"``
        (default) or ``"file"`` with a slab directory (see
        :mod:`repro.graphs.shm`).  Like ``n_workers``, ignored when an
        engine is passed in: a live engine's slab already exists.
    batch_backward:
        The PR 4 flag on the scalar backend: route each candidate's
        backward-repetition loop through
        :func:`~repro.core.weighted.ws_bw_batch`.  ``charged`` implies it.
    kernel_backend:
        Kernel backend for the batch forward-walk trajectory loop —
        ``numpy`` (reference), ``native`` (Numba JIT), or ``python``
        (verification twin); see :mod:`repro.walks.kernels`.  Folded
        into the job's :class:`~repro.core.config.WalkEstimateConfig`
        the same way ``batch_backward`` is, so the batch and sharded
        front ends (and :mod:`repro.service` jobs) inherit it.
        Validated eagerly for *availability*: asking for ``native``
        on a host without numba fails here with an actionable message
        rather than as an ImportError mid-job.  Scalar engines walk
        node-by-node through the charged API and ignore it.
    """

    backend: str = "batch"
    long_run: bool = False
    n_workers: Optional[int] = None
    mp_context: str = "spawn"
    batch_backward: bool = False
    kernel_backend: str = "numpy"
    slab_storage: str = "shm"
    slab_dir: Optional[str] = None

    def __post_init__(self) -> None:
        if self.backend not in BACKENDS:
            raise ConfigurationError(
                f"unknown backend {self.backend!r}; valid: {', '.join(BACKENDS)}"
            )
        require_kernel_backend(self.kernel_backend)
        if self.n_workers is not None and self.n_workers < 1:
            raise ConfigurationError(
                f"n_workers must be >= 1 or None, got {self.n_workers}"
            )
        if self.slab_storage not in SLAB_STORAGES:
            raise ConfigurationError(
                f"unknown slab_storage {self.slab_storage!r}; "
                f"valid: {', '.join(SLAB_STORAGES)}"
            )
        if self.slab_storage == "file" and self.slab_dir is None:
            raise ConfigurationError("slab_storage='file' requires slab_dir")
        if self.backend == "charged" and self.long_run:
            raise ConfigurationError(
                "the charged (batch_backward) regime has no long-run form; "
                "use backend='scalar' with long_run=True"
            )

    @property
    def effective_batch_backward(self) -> bool:
        """Whether the scalar sampler should run batched backward walks."""
        return self.batch_backward or self.backend == "charged"

    def with_overrides(self, **changes) -> "EngineConfig":
        """Copy with the given fields replaced (validation re-runs)."""
        return replace(self, **changes)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe dict form (the wire/CLI schema)."""
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "EngineConfig":
        """Inverse of :meth:`to_dict`; unknown keys raise."""
        return cls(**_checked_fields(cls, data))


def _checked_fields(cls, data: Mapping[str, Any]) -> Dict[str, Any]:
    valid = {f for f in cls.__dataclass_fields__}
    unknown = set(data) - valid
    if unknown:
        raise ConfigurationError(
            f"unknown {cls.__name__} keys: {sorted(unknown)}; valid: {sorted(valid)}"
        )
    return dict(data)


# ----------------------------------------------------------------------
# Job specs
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class EstimationJobSpec:
    """One complete estimation job, as data.

    The single schema shared by the :func:`estimate` dispatcher, the
    ``walk-not-wait estimate --job job.json`` CLI, and the
    :mod:`repro.service` wire format — a spec built in code round-trips
    through :meth:`to_json` / :meth:`from_json` unchanged.

    Attributes
    ----------
    design:
        Transition-design spec (see :func:`design_from_spec`); stored
        canonically as a dict, accepted as a shorthand string too.
    samples:
        Scalar/charged: samples to draw.  Batch/sharded: walks per round
        (``k_walks``), or continuous runs (``k_runs``) under ``long_run``.
    start:
        Walk origin.
    segments:
        Segments per continuous run (``long_run`` engines only).
    estimand:
        What the serving layer evaluates on the accepted samples —
        ``degree`` (true discovered degree, free per §2.4) is built in;
        the dispatcher itself only carries the name.
    error_target:
        Stop refining once the running estimate's standard error is at or
        under this (service-level semantics; ``None`` = run to budget).
    query_budget:
        Unique-node budget for this job's *tenant* (service-level
        admission/preemption input; the scalar backends also honor the
        API's own budget).
    tenant:
        Accounting principal for :class:`~repro.osn.accounting.TenantLedger`
        attribution.
    seed:
        Deterministic seed; ``None`` lets the caller supply a stream.
    walk:
        The :class:`~repro.core.config.WalkEstimateConfig` knobs.
    engine:
        The :class:`EngineConfig` regime selection.
    """

    design: Union[str, Mapping[str, Any]] = "srw"
    samples: int = 1
    start: int = 0
    segments: int = 1
    estimand: str = "degree"
    error_target: Optional[float] = None
    query_budget: Optional[int] = None
    tenant: str = "default"
    seed: Optional[int] = None
    walk: WalkEstimateConfig = field(default_factory=WalkEstimateConfig)
    engine: EngineConfig = field(default_factory=EngineConfig)

    def __post_init__(self) -> None:
        # Canonicalize the design spec eagerly: errors surface at spec
        # construction, not mid-dispatch, and to_dict() is total.
        canonical = design_to_spec(design_from_spec(self.design))
        object.__setattr__(self, "design", canonical)
        if self.samples < 1:
            raise ConfigurationError(f"samples must be >= 1, got {self.samples}")
        if self.segments < 1:
            raise ConfigurationError(f"segments must be >= 1, got {self.segments}")
        if self.estimand not in ESTIMANDS:
            raise ConfigurationError(
                f"unknown estimand {self.estimand!r}; valid: {', '.join(ESTIMANDS)}"
            )
        if self.error_target is not None and self.error_target <= 0:
            raise ConfigurationError(
                f"error_target must be > 0 or None, got {self.error_target}"
            )
        if self.query_budget is not None and self.query_budget < 0:
            raise ConfigurationError(
                f"query_budget must be >= 0 or None, got {self.query_budget}"
            )
        if not self.tenant:
            raise ConfigurationError("tenant must be a non-empty string")

    def build_design(self) -> TransitionDesign:
        """The spec's transition design, constructed fresh."""
        return design_from_spec(self.design)

    def walk_config(self) -> WalkEstimateConfig:
        """The walk knobs with the engine's ``batch_backward`` and
        ``kernel_backend`` folded in.

        A non-default engine ``kernel_backend`` wins over the walk
        config's default; a walk config that names a backend explicitly
        keeps it unless the engine overrides with a non-``numpy`` one —
        the same "engine regime beats per-walk default" precedence as
        ``batch_backward``.
        """
        config = self.walk
        if self.engine.effective_batch_backward and not config.batch_backward:
            config = config.with_overrides(batch_backward=True)
        if (
            self.engine.kernel_backend != "numpy"
            and config.kernel_backend != self.engine.kernel_backend
        ):
            config = config.with_overrides(kernel_backend=self.engine.kernel_backend)
        return config

    def with_overrides(self, **changes) -> "EstimationJobSpec":
        """Copy with the given fields replaced (validation re-runs)."""
        return replace(self, **changes)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe dict form — the service wire format and CLI schema."""
        return {
            "design": dict(self.design),
            "samples": self.samples,
            "start": self.start,
            "segments": self.segments,
            "estimand": self.estimand,
            "error_target": self.error_target,
            "query_budget": self.query_budget,
            "tenant": self.tenant,
            "seed": self.seed,
            "walk": asdict(self.walk),
            "engine": self.engine.to_dict(),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "EstimationJobSpec":
        """Inverse of :meth:`to_dict`; nested configs rebuild and re-validate."""
        fields = _checked_fields(cls, data)
        if "walk" in fields and isinstance(fields["walk"], Mapping):
            fields["walk"] = WalkEstimateConfig(
                **_checked_fields(WalkEstimateConfig, fields["walk"])
            )
        if "engine" in fields and isinstance(fields["engine"], Mapping):
            fields["engine"] = EngineConfig.from_dict(fields["engine"])
        return cls(**fields)

    def to_json(self, indent: Optional[int] = None) -> str:
        """Serialize to JSON (one job per document)."""
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "EstimationJobSpec":
        """Parse a :meth:`to_json` document (or any dict matching the schema)."""
        data = json.loads(text)
        if not isinstance(data, dict):
            raise ConfigurationError(
                f"job JSON must be an object, got {type(data).__name__}"
            )
        return cls.from_dict(data)


# ----------------------------------------------------------------------
# Results
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class EstimateResult:
    """Normalized view over whichever front end a job dispatched to.

    :attr:`raw` is the front end's native return value, untouched — the
    parity tests compare it field for field against a direct call.  The
    accessors below give every backend one shape: accepted sample nodes,
    their target weights, and the cost/effort counters that exist for the
    backend (zero where the regime has none, e.g. query cost on free
    graphs).
    """

    spec: EstimationJobSpec
    raw: Union[SampleBatch, BatchWalkEstimateResult]

    @property
    def nodes(self) -> np.ndarray:
        """Accepted sample node ids, as an int64 array."""
        if isinstance(self.raw, SampleBatch):
            return np.asarray(self.raw.nodes, dtype=np.int64)
        return np.asarray(self.raw.nodes, dtype=np.int64)

    @property
    def weights(self) -> np.ndarray:
        """Target weights aligned to :attr:`nodes` (feed
        :func:`~repro.estimators.aggregates.average_estimate_arrays`)."""
        if isinstance(self.raw, SampleBatch):
            return np.asarray(self.raw.target_weights, dtype=np.float64)
        return np.asarray(self.raw.weights, dtype=np.float64)

    @property
    def accepted(self) -> int:
        """Number of accepted samples."""
        return int(self.nodes.size)

    @property
    def attempts(self) -> int:
        """Accept/reject decisions made (== candidates judged)."""
        if isinstance(self.raw, SampleBatch):
            return len(self.raw.nodes)  # scalar batches keep only accepts
        return int(self.raw.accepted.size)

    @property
    def acceptance_rate(self) -> float:
        """Fraction of candidates accepted, where the backend reports it."""
        if isinstance(self.raw, BatchWalkEstimateResult):
            return self.raw.acceptance_rate
        return 1.0  # scalar SampleBatch records accepted samples only

    @property
    def query_cost(self) -> int:
        """Unique-node queries the round charged (0 on free graphs)."""
        if isinstance(self.raw, SampleBatch):
            return int(self.raw.query_cost)
        return 0

    @property
    def walk_steps(self) -> int:
        """Forward + backward transitions taken."""
        if isinstance(self.raw, SampleBatch):
            return int(self.raw.walk_steps)
        return int(self.raw.forward_steps + self.raw.backward_steps)

    def to_sample_batch(self) -> SampleBatch:
        """The result as a :class:`SampleBatch` (scalar-era tooling)."""
        if isinstance(self.raw, SampleBatch):
            return self.raw
        return self.raw.to_sample_batch()


# ----------------------------------------------------------------------
# The dispatcher
# ----------------------------------------------------------------------
def estimate(
    job: EstimationJobSpec,
    *,
    api=None,
    graph: Optional[Union[Graph, CSRGraph]] = None,
    engine=None,
    seed: RngLike = None,
) -> EstimateResult:
    """Run one estimation job on whichever engine its spec selects.

    Exactly one resource matching the spec's backend must be supplied:

    ========== =====================================================
    backend     required resource
    ========== =====================================================
    scalar      ``api`` — a charged :class:`~repro.osn.api.SocialNetworkAPI`
    charged     ``api`` (the sampler runs with ``batch_backward`` on)
    batch       ``graph`` — a :class:`~repro.graphs.graph.Graph` or
                compiled :class:`~repro.graphs.csr.CSRGraph`
    sharded     ``engine`` — a live
                :class:`~repro.walks.parallel.ShardedWalkEngine`
    ========== =====================================================

    *seed* overrides the spec's seed when given — the hook callers that
    manage their own RNG streams (the serving layer's per-job generators)
    use; with neither, randomness is unseeded.

    The dispatch is a pure fan-out: the selected front end receives the
    same design, start, counts, config, and seed a direct call would, so
    ``result.raw`` is bit-identical to that direct call — the parity
    contract ``tests/core/test_dispatch.py`` pins for every engine row.
    """
    design = job.build_design()
    config = job.walk_config()
    backend = job.engine.backend
    run_seed = seed if seed is not None else job.seed

    if backend in ("scalar", "charged"):
        if api is None:
            raise ConfigurationError(
                f"backend {backend!r} estimates against a charged API; pass api=..."
            )
        if job.engine.long_run:
            sampler: Any = LongRunWalkEstimateSampler(design, config)
        else:
            sampler = WalkEstimateSampler(design, config)
        raw: Union[SampleBatch, BatchWalkEstimateResult] = sampler.sample(
            api, job.start, job.samples, seed=run_seed
        )
    elif backend == "batch":
        if graph is None:
            raise ConfigurationError(
                "backend 'batch' runs over a free in-memory graph; pass graph=..."
            )
        if job.engine.long_run:
            raw = long_run_walk_estimate_batch(
                graph,
                design,
                job.start,
                job.samples,
                job.segments,
                config=config,
                seed=run_seed,
            )
        else:
            raw = walk_estimate_batch(
                graph, design, job.start, job.samples, config=config, seed=run_seed
            )
    else:  # sharded — BACKENDS is closed, __post_init__ enforced membership
        if engine is None:
            raise ConfigurationError(
                "backend 'sharded' fans over a ShardedWalkEngine; pass engine=..."
            )
        if job.engine.long_run:
            raw = long_run_walk_estimate_sharded(
                engine,
                design,
                job.start,
                job.samples,
                job.segments,
                config=config,
                seed=run_seed,
            )
        else:
            raw = walk_estimate_sharded(
                engine, design, job.start, job.samples, config=config, seed=run_seed
            )
    return EstimateResult(spec=job, raw=raw)
