"""WALK-ESTIMATE: the full sampler (paper §3–§5).

Per sample: run a *short* forward walk (``2d + 1`` steps by default, §4.3),
take its endpoint as a candidate, ESTIMATE the candidate's sampling
probability with crawl-assisted weighted backward walks, and
accept/reject it against the input design's target distribution.  The
output sample follows the *same* target distribution as the input MCMC
sampler — WALK-ESTIMATE is a swap-in replacement (§1.2) — at a fraction of
the query cost.

The ablation variants of §7.1 are exposed as factory functions:

========================  ==============  ===================
variant                   initial crawl   weighted sampling
========================  ==============  ===================
:func:`we_none_sampler`   —               —
:func:`we_crawl_sampler`  ✓               —
:func:`we_weighted_sampler`  —            ✓
:func:`we_full_sampler`   ✓               ✓
========================  ==============  ===================
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Union

import numpy as np

from repro.core.config import WalkEstimateConfig
from repro.core.crawl import InitialCrawl
from repro.core.estimate import ProbabilityEstimator
from repro.core.rejection import RejectionSampler, ScaleFactorBootstrap
from repro.core.unbiased import unbiased_estimate_batch
from repro.core.weighted import ForwardHistory
from repro.errors import ConfigurationError, QueryBudgetExceededError
from repro.graphs.csr import CSRGraph
from repro.graphs.graph import Graph
from repro.osn.api import SocialNetworkAPI
from repro.rng import RngLike, ensure_rng
from repro.walks.batch import run_walk_batch, target_weights_batch
from repro.walks.samplers import SampleBatch
from repro.walks.transitions import Node, TransitionDesign
from repro.walks.walker import run_walk


@dataclass(frozen=True)
class SampleRecord:
    """Full provenance of one accept/reject decision."""

    candidate: Node
    estimated_probability: float
    target_weight: float
    acceptance_probability: float
    accepted: bool
    query_cost_after: int


@dataclass
class WalkEstimateReport:
    """Everything a WALK-ESTIMATE run produced beyond the samples.

    The three ``*_cost`` fields attribute unique-node query cost to the
    run's phases — initial crawl, forward walking, backward estimation —
    via counter snapshots/deltas (a node charged in one phase is free in
    every later one, so the numbers depend on phase order; anything left
    over, e.g. target-weight lookups, shows up in the sampler's total but
    in none of the three).
    """

    records: List[SampleRecord] = field(default_factory=list)
    forward_walks: int = 0
    forward_steps: int = 0
    backward_steps: int = 0
    crawl_cost: int = 0
    walk_cost: int = 0
    backward_cost: int = 0

    @property
    def attempts(self) -> int:
        """Total accept/reject decisions made."""
        return len(self.records)

    @property
    def acceptance_rate(self) -> float:
        """Fraction of candidates accepted."""
        if not self.records:
            return 0.0
        return sum(r.accepted for r in self.records) / len(self.records)

    @property
    def total_steps(self) -> int:
        """Forward plus backward transitions (Figure 5's effort measure)."""
        return self.forward_steps + self.backward_steps


class WalkEstimateSampler:
    """The WALK-ESTIMATE sampler over any input transition design.

    Parameters
    ----------
    design:
        The input MCMC sampler's transit design; WALK-ESTIMATE reproduces
        its target distribution.
    config:
        Algorithm knobs; defaults follow the paper (§7.1).
    name:
        Label for reports; defaults to ``we-<design>``.
    """

    def __init__(
        self,
        design: TransitionDesign,
        config: Optional[WalkEstimateConfig] = None,
        name: Optional[str] = None,
    ) -> None:
        self.design = design
        self.config = config if config is not None else WalkEstimateConfig()
        self.name = name if name is not None else f"we-{design.name}"
        #: Report of the most recent :meth:`sample` call.
        self.last_report: Optional[WalkEstimateReport] = None

    def sample(
        self,
        api: SocialNetworkAPI,
        start: Node,
        count: int,
        seed: RngLike = None,
    ) -> SampleBatch:
        """Draw *count* samples of the design's target distribution.

        Stops early with a partial batch when the API's query budget runs
        out; detailed provenance lands in :attr:`last_report`.
        """
        if count < 1:
            raise ConfigurationError(f"count must be >= 1, got {count}")
        rng = ensure_rng(seed)
        t = self.config.effective_walk_length
        report = WalkEstimateReport()
        self.last_report = report
        batch = SampleBatch(sampler=self.name)
        estimator: Optional[ProbabilityEstimator] = None

        try:
            before_crawl = api.snapshot()
            crawl = self._build_crawl(api, start)
            report.crawl_cost = api.counter.delta(before_crawl).unique_nodes
            history = ForwardHistory(start, t)
            estimator = ProbabilityEstimator(
                api,
                self.design,
                start,
                t,
                self.config,
                history=history,
                crawl=crawl,
                seed=rng,
            )
            bootstrap = ScaleFactorBootstrap(percentile=self.config.scale_percentile)
            rejection = RejectionSampler(bootstrap, seed=rng)

            self._calibrate(api, start, t, history, estimator, bootstrap, report, rng)

            attempts_left = self.config.max_attempts_per_sample * count
            while len(batch.nodes) < count and attempts_left > 0:
                attempts_left -= 1
                candidate = self._one_candidate(api, start, t, history, report, rng)
                before_estimate = api.snapshot()
                estimate = estimator.estimate(candidate)
                report.backward_cost += api.counter.delta(
                    before_estimate
                ).unique_nodes
                target_weight = self.design.target_weight(api, candidate)
                beta = rejection.acceptance_probability(estimate.mean, target_weight)
                accepted = rejection.accept(estimate.mean, target_weight)
                report.records.append(
                    SampleRecord(
                        candidate=candidate,
                        estimated_probability=estimate.mean,
                        target_weight=target_weight,
                        acceptance_probability=beta,
                        accepted=accepted,
                        query_cost_after=api.query_cost,
                    )
                )
                if accepted:
                    batch.nodes.append(candidate)
                    batch.target_weights.append(target_weight)
        except QueryBudgetExceededError:
            pass  # Return whatever was gathered; cost curves use partials.

        report.backward_steps = estimator.stats.steps if estimator is not None else 0
        batch.query_cost = api.query_cost
        batch.walk_steps = report.total_steps
        return batch

    # ------------------------------------------------------------------
    # Phases
    # ------------------------------------------------------------------
    def _build_crawl(
        self, api: SocialNetworkAPI, start: Node
    ) -> Optional[InitialCrawl]:
        if self.config.crawl_hops == 0:
            return None
        return InitialCrawl(api, self.design, start, self.config.crawl_hops)

    def _one_candidate(self, api, start, t, history, report, rng) -> Node:
        before = api.snapshot()
        walk = run_walk(api, self.design, start, t, seed=rng)
        report.walk_cost += api.counter.delta(before).unique_nodes
        history.record(walk)
        report.forward_walks += 1
        report.forward_steps += t
        return walk.end

    def _calibrate(
        self, api, start, t, history, estimator, bootstrap, report, rng
    ) -> None:
        """Seed the WS-BW history and the scale-factor pool (§6.3.2).

        The calibration walks are not wasted: their trajectories feed the
        weighted-sampling history, and their endpoint estimates populate
        the ratio pool the 10th-percentile scale factor is drawn from.
        """
        light_repetitions = self.config.calibration_repetitions
        for _ in range(self.config.calibration_walks):
            candidate = self._one_candidate(api, start, t, history, report, rng)
            before_estimate = api.snapshot()
            estimate = estimator.estimate(
                candidate, repetitions=light_repetitions, refine=False
            )
            report.backward_cost += api.counter.delta(before_estimate).unique_nodes
            target_weight = self.design.target_weight(api, candidate)
            if target_weight > 0 and estimate.mean > 0:
                bootstrap.observe(estimate.mean / target_weight)
        bootstrap.ensure_ready()


# ----------------------------------------------------------------------
# Vectorized batch front end (CSR backend)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class BatchWalkEstimateResult:
    """Per-walk arrays from one :func:`walk_estimate_batch` round.

    Everything is aligned by walk index, so estimator fan-in is pure
    array arithmetic — :func:`repro.estimators.aggregates.average_estimate_arrays`
    consumes :attr:`nodes` / :attr:`weights` directly.
    """

    candidates: np.ndarray
    """Endpoint of every forward walk, shape ``(K,)``."""

    estimates: np.ndarray
    """Estimated sampling probability ``p̂`` per candidate, shape ``(K,)``."""

    target_weights: np.ndarray
    """Unnormalized target weight ``q̃`` per candidate, shape ``(K,)``."""

    acceptance: np.ndarray
    """Acceptance probability β per candidate, shape ``(K,)``."""

    accepted: np.ndarray
    """Boolean accept/reject mask, shape ``(K,)``."""

    forward_steps: int
    backward_steps: int

    @property
    def nodes(self) -> np.ndarray:
        """Accepted sample nodes (the batch's output), as an array."""
        return self.candidates[self.accepted]

    @property
    def weights(self) -> np.ndarray:
        """Target weights of the accepted samples, aligned to :attr:`nodes`."""
        return self.target_weights[self.accepted]

    @property
    def acceptance_rate(self) -> float:
        """Fraction of candidates accepted."""
        if self.accepted.size == 0:
            return 0.0
        return float(self.accepted.mean())

    def to_sample_batch(self, sampler: str = "we-batch") -> SampleBatch:
        """Repackage as a :class:`SampleBatch` for the scalar-era tooling."""
        return SampleBatch(
            nodes=[int(n) for n in self.nodes],
            target_weights=[float(w) for w in self.weights],
            query_cost=0,
            walk_steps=self.forward_steps + self.backward_steps,
            sampler=sampler,
        )


def walk_estimate_batch(
    graph: Union[Graph, CSRGraph],
    design: TransitionDesign,
    start: Node,
    k_walks: int,
    config: Optional[WalkEstimateConfig] = None,
    seed: RngLike = None,
) -> BatchWalkEstimateResult:
    """One vectorized WALK-ESTIMATE round: K walks, K estimates, K verdicts.

    The throughput-oriented twin of :class:`WalkEstimateSampler` for free
    in-memory graphs: K forward walks advance together
    (:func:`~repro.walks.batch.run_walk_batch`), their endpoints'
    sampling probabilities are estimated by batched backward walks
    (:func:`~repro.core.unbiased.unbiased_estimate_batch`), and
    acceptance–rejection is decided for the whole batch in one vectorized
    pass.  Because the graph is free, the query-cost heuristics of the
    online sampler (initial crawl, WS-BW weighting) are deliberately
    absent — they buy query savings, not wall-clock speed.  Use
    :class:`WalkEstimateSampler` whenever cost against a
    :class:`~repro.osn.api.SocialNetworkAPI` is the thing being measured.

    Accepted nodes follow the design's target distribution, so feeding
    ``result.nodes`` / ``result.weights`` to
    :func:`~repro.estimators.aggregates.average_estimate_arrays` estimates
    population aggregates exactly as the scalar pipeline does.  Rejection
    thins the batch: expect ``len(result.nodes) < k_walks``, and run
    another round (fresh seed) if more samples are needed.

    .. note:: **Compatibility front end.**  New call sites should go
       through :func:`repro.core.estimate` with
       ``EngineConfig(backend="batch")`` — the unified dispatcher is
       parity-pinned to this function and is the only entry point the
       serving layer and CLI use.  This signature stays as a thin
       compatibility shim.
    """
    if k_walks < 1:
        raise ConfigurationError(f"k_walks must be >= 1, got {k_walks}")
    config = config if config is not None else WalkEstimateConfig()
    rng = ensure_rng(seed)
    csr = graph.compile() if isinstance(graph, Graph) else graph
    t = config.effective_walk_length
    repetitions = config.backward_repetitions + config.refine_repetitions

    bootstrap = ScaleFactorBootstrap(percentile=config.scale_percentile)
    rejection = RejectionSampler(bootstrap, seed=rng)

    # Calibration: a small batch seeds the scale-factor pool (§6.3.2).
    calibration = run_walk_batch(
        csr,
        design,
        np.full(config.calibration_walks, start),
        t,
        seed=rng,
        backend=config.kernel_backend,
    )
    light_repetitions = config.calibration_repetitions
    calibration_estimates = unbiased_estimate_batch(
        csr,
        design,
        calibration.ends,
        start,
        t,
        seed=rng,
        repetitions=light_repetitions,
    )
    calibration_weights = target_weights_batch(csr, design, calibration.ends)
    bootstrap.observe_many(calibration_estimates / calibration_weights)
    bootstrap.ensure_ready()

    # Main round: K candidates, estimated and judged together.
    walks = run_walk_batch(
        csr,
        design,
        np.full(k_walks, start),
        t,
        seed=rng,
        backend=config.kernel_backend,
    )
    estimates = unbiased_estimate_batch(
        csr, design, walks.ends, start, t, seed=rng, repetitions=repetitions
    )
    weights = target_weights_batch(csr, design, walks.ends)
    accepted, betas = rejection.accept_batch(estimates, weights)

    forward = (config.calibration_walks + k_walks) * t
    backward = (
        config.calibration_walks * light_repetitions + k_walks * repetitions
    ) * t
    return BatchWalkEstimateResult(
        candidates=walks.ends,
        estimates=estimates,
        target_weights=weights,
        acceptance=betas,
        accepted=accepted,
        forward_steps=forward,
        backward_steps=backward,
    )


# ----------------------------------------------------------------------
# §7.1 ablation variants
# ----------------------------------------------------------------------
def we_none_sampler(
    design: TransitionDesign, config: Optional[WalkEstimateConfig] = None
) -> WalkEstimateSampler:
    """WE-None: neither variance-reduction heuristic."""
    base = config if config is not None else WalkEstimateConfig()
    return WalkEstimateSampler(
        design,
        base.with_overrides(crawl_hops=0, weighted_sampling=False),
        name=f"we-none-{design.name}",
    )


def we_crawl_sampler(
    design: TransitionDesign, config: Optional[WalkEstimateConfig] = None
) -> WalkEstimateSampler:
    """WE-Crawl: initial crawling only."""
    base = config if config is not None else WalkEstimateConfig()
    if base.crawl_hops == 0:
        base = base.with_overrides(crawl_hops=2)
    return WalkEstimateSampler(
        design,
        base.with_overrides(weighted_sampling=False),
        name=f"we-crawl-{design.name}",
    )


def we_weighted_sampler(
    design: TransitionDesign, config: Optional[WalkEstimateConfig] = None
) -> WalkEstimateSampler:
    """WE-Weighted: weighted backward sampling only."""
    base = config if config is not None else WalkEstimateConfig()
    return WalkEstimateSampler(
        design,
        base.with_overrides(crawl_hops=0, weighted_sampling=True),
        name=f"we-weighted-{design.name}",
    )


def we_full_sampler(
    design: TransitionDesign, config: Optional[WalkEstimateConfig] = None
) -> WalkEstimateSampler:
    """WE: both heuristics on (the paper's main algorithm)."""
    base = config if config is not None else WalkEstimateConfig()
    if base.crawl_hops == 0:
        base = base.with_overrides(crawl_hops=2)
    return WalkEstimateSampler(
        design,
        base.with_overrides(weighted_sampling=True),
        name=f"we-{design.name}",
    )
