"""UNBIASED-ESTIMATE: the backward random walk (paper Algorithm 1).

Estimates ``p_t(u)`` — the probability that a *t*-step forward walk from
``w`` ends at ``u`` — by walking *backward* from ``u``:

    p_t(u) = Σ_x  T(x, u) · p_{t-1}(x)        over predecessors x of u.

Draw one predecessor ``x`` uniformly from the candidate set ``C(u)``, then

    estimate = |C(u)| · T(x, u) · estimate_of(p_{t-1}(x)),

recursing until ``t = 0`` (worth 1 at the start node, 0 elsewhere) or until
an :class:`~repro.core.crawl.InitialCrawl` table covers the remaining depth.
Unbiasedness follows by induction exactly as in the paper's Eq. 22–24 —
and is verified in the test suite by exhaustive enumeration of backward
paths on small graphs.

The candidate set ``C(u)`` is ``N(u)`` plus ``u`` itself when the design
has a self-loop at ``u`` (MHRW does); on an undirected graph these are the
only states with ``T(x, u) > 0``.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

from repro.core.crawl import InitialCrawl
from repro.errors import ConfigurationError, GraphError
from repro.graphs.csr import CSRGraph
from repro.graphs.graph import Graph
from repro.rng import RngLike, ensure_rng
from repro.walks.batch import check_max_degree
from repro.walks.transitions import (
    LazyWalk,
    MaxDegreeWalk,
    MetropolisHastingsWalk,
    NeighborView,
    Node,
    SimpleRandomWalk,
    TransitionDesign,
)


def backward_candidates(
    view: NeighborView, design: TransitionDesign, node: Node
) -> tuple[Node, ...]:
    """All states that can transition into *node* in one step.

    On an undirected graph, predecessors of ``u`` are among ``N(u) ∪ {u}``;
    ``u`` itself is included exactly when the design can self-loop
    (``may_self_loop``).  When the particular node's self-loop mass happens
    to be zero, including it is still unbiased — the realization just picks
    up a zero weight — and avoids materializing the full transition row,
    which for MHRW would query every neighbor's degree.
    """
    neighbors = view.neighbors(node)
    if design.may_self_loop:
        return neighbors + (node,)
    return neighbors


def unbiased_estimate(
    view: NeighborView,
    design: TransitionDesign,
    node: Node,
    start: Node,
    t: int,
    seed: RngLike = None,
    crawl: Optional[InitialCrawl] = None,
    max_depth: Optional[int] = None,
) -> float:
    """One unbiased realization of the estimator of ``p_t(node)``.

    Parameters
    ----------
    view:
        Neighbor view; a charged API accrues the backward walk's query cost.
    design:
        Transit design of the *forward* walk being estimated.
    node:
        The node whose sampling probability is estimated.
    start:
        The forward walk's starting node ``w``.
    t:
        Forward walk length.
    crawl:
        Optional exact-probability table; when provided the recursion stops
        at depth ``crawl.hops`` and reads the exact value (variance
        reduction #1, §5.2).
    max_depth:
        Internal recursion guard; defaults to ``t``.

    Returns
    -------
    float
        A single non-negative realization with expectation ``p_t(node)``.
    """
    if t < 0:
        raise ValueError(f"t must be >= 0, got {t}")
    rng = ensure_rng(seed)
    return _backward(view, design, node, start, t, rng, crawl)


def _backward(
    view: NeighborView,
    design: TransitionDesign,
    node: Node,
    start: Node,
    t: int,
    rng: np.random.Generator,
    crawl: Optional[InitialCrawl],
) -> float:
    # Iterative form of the recursion: accumulate the product weight while
    # walking backward, so deep walks cannot hit Python's recursion limit.
    weight = 1.0
    current = node
    depth = t
    while True:
        if crawl is not None and crawl.covers_step(depth):
            return weight * crawl.probability(current, depth)
        if depth == 0:
            return weight if current == start else 0.0
        candidates = backward_candidates(view, design, current)
        predecessor = candidates[int(rng.integers(0, len(candidates)))]
        transition = design.transition_probability(view, predecessor, current)
        weight *= len(candidates) * transition
        if weight == 0.0:
            # The sampled predecessor cannot actually reach `current`
            # (e.g. a no-self-loop candidate); the realization is 0.
            return 0.0
        current = predecessor
        depth -= 1


# ----------------------------------------------------------------------
# Vectorized batch estimation (CSR backend)
# ----------------------------------------------------------------------
def _transition_probabilities_batch(
    csr: CSRGraph,
    design: TransitionDesign,
    sources: np.ndarray,
    destinations: np.ndarray,
) -> np.ndarray:
    """``T(source, destination)`` for aligned position arrays.

    Only called with (source, destination) pairs that are graph edges or
    self-loops — the shape backward sampling produces — so neighbor-set
    membership needs no checking.  Pure-self-loop pairs only ever reach a
    branch whose design ``may_self_loop`` (the candidate sets exclude the
    node itself otherwise), except through the LazyWalk recursion, which
    zeroes a loop-free inner design's self-entry before adding λ.
    """
    if isinstance(design, SimpleRandomWalk):
        return 1.0 / csr.degrees[sources].astype(np.float64)
    if isinstance(design, MetropolisHastingsWalk):
        ds = csr.degrees[sources].astype(np.float64)
        dd = csr.degrees[destinations].astype(np.float64)
        probabilities = np.minimum(1.0, ds / dd) / ds
        loops = sources == destinations
        if np.any(loops):
            probabilities[loops] = csr.mhrw_selfloop_mass()[sources[loops]]
        return probabilities
    if isinstance(design, MaxDegreeWalk):
        degrees = csr.degrees[sources]
        check_max_degree(csr, design, sources, degrees)
        probabilities = np.full(sources.size, 1.0 / design.max_degree)
        loops = sources == destinations
        if np.any(loops):
            probabilities[loops] = 1.0 - design.move_probability(
                degrees[loops].astype(np.float64)
            )
        return probabilities
    if isinstance(design, LazyWalk):
        probabilities = (1.0 - design.laziness) * _transition_probabilities_batch(
            csr, design.inner, sources, destinations
        )
        loops = sources == destinations
        if np.any(loops):
            if not design.inner.may_self_loop:
                # The inner branch priced (u, u) as if it were an edge;
                # a loop-free inner design's true self-entry is 0.
                probabilities[loops] = 0.0
            probabilities[loops] += design.laziness
        return probabilities
    raise ConfigurationError(
        f"design {design.name!r} has no vectorized transition probability; "
        "use the scalar unbiased_estimate"
    )


def unbiased_estimate_batch(
    graph: Union[Graph, CSRGraph],
    design: TransitionDesign,
    nodes,
    start,
    t: int,
    seed: RngLike = None,
    repetitions: int = 1,
) -> np.ndarray:
    """Mean of *repetitions* unbiased realizations of ``p_t(·)`` per node.

    The vectorized twin of :func:`unbiased_estimate`: all
    ``len(nodes) × repetitions`` backward walks advance together, one
    predecessor draw and one transition-weight gather per depth level.  It
    runs over a free in-memory :class:`CSRGraph` — per-query cost
    accounting (and hence the crawl-table shortcut) stays on the scalar
    path, which is the one WALK-ESTIMATE uses against a charged API.

    *start* is either one node — all walks share the forward origin, the
    many-short-runs shape — or an array aligned with *nodes* giving each
    backward walk its own origin, which is what the long-run batch front
    end needs (every segment's endpoint is estimated against that
    segment's entry node).

    Returns an array of shape ``(len(nodes),)`` whose entries have
    expectation ``p_t(node)`` — the probability a *t*-step forward walk
    from each node's start ends at that node.
    """
    if t < 0:
        raise ValueError(f"t must be >= 0, got {t}")
    if repetitions < 1:
        raise ConfigurationError(f"repetitions must be >= 1, got {repetitions}")
    csr = graph.compile() if isinstance(graph, Graph) else graph
    rng = ensure_rng(seed)
    targets = csr.positions_of(nodes)
    starts = np.asarray(start, dtype=np.int64)
    if starts.ndim == 0:
        start_position = np.full(targets.size, csr.position_of(int(starts)))
    elif starts.ndim == 1 and starts.size == targets.size:
        start_position = csr.positions_of(starts)
    else:
        raise ConfigurationError(
            f"start must be one node or an array aligned with nodes; got "
            f"shape {starts.shape} for {targets.size} nodes"
        )
    start_position = np.tile(start_position, repetitions)
    current = np.tile(targets, repetitions)
    weights = np.ones(current.size, dtype=np.float64)
    self_loop = 1 if design.may_self_loop else 0
    for _ in range(t, 0, -1):
        degrees = csr.degrees[current]
        if np.any((degrees == 0) & (weights > 0)):
            stuck = int(csr.ids_of(current[(degrees == 0) & (weights > 0)][:1])[0])
            raise GraphError(f"backward walk stuck: node {stuck} has no neighbors")
        candidates = degrees + self_loop
        # Walks whose weight already hit zero keep drawing (their product
        # stays zero); masking them out would cost more than it saves.
        picks = rng.integers(0, np.maximum(candidates, 1))
        is_neighbor = picks < degrees
        predecessors = np.where(
            is_neighbor,
            csr.indices[csr.indptr[current] + np.minimum(picks, degrees - 1)],
            current,
        )
        transition = _transition_probabilities_batch(csr, design, predecessors, current)
        weights *= candidates * transition
        current = predecessors
    realizations = weights * (current == start_position)
    return realizations.reshape(repetitions, targets.size).mean(axis=0)
