"""UNBIASED-ESTIMATE: the backward random walk (paper Algorithm 1).

Estimates ``p_t(u)`` — the probability that a *t*-step forward walk from
``w`` ends at ``u`` — by walking *backward* from ``u``:

    p_t(u) = Σ_x  T(x, u) · p_{t-1}(x)        over predecessors x of u.

Draw one predecessor ``x`` uniformly from the candidate set ``C(u)``, then

    estimate = |C(u)| · T(x, u) · estimate_of(p_{t-1}(x)),

recursing until ``t = 0`` (worth 1 at the start node, 0 elsewhere) or until
an :class:`~repro.core.crawl.InitialCrawl` table covers the remaining depth.
Unbiasedness follows by induction exactly as in the paper's Eq. 22–24 —
and is verified in the test suite by exhaustive enumeration of backward
paths on small graphs.

The candidate set ``C(u)`` is ``N(u)`` plus ``u`` itself when the design
has a self-loop at ``u`` (MHRW does); on an undirected graph these are the
only states with ``T(x, u) > 0``.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.crawl import InitialCrawl
from repro.rng import RngLike, ensure_rng
from repro.walks.transitions import NeighborView, Node, TransitionDesign


def backward_candidates(
    view: NeighborView, design: TransitionDesign, node: Node
) -> tuple[Node, ...]:
    """All states that can transition into *node* in one step.

    On an undirected graph, predecessors of ``u`` are among ``N(u) ∪ {u}``;
    ``u`` itself is included exactly when the design can self-loop
    (``may_self_loop``).  When the particular node's self-loop mass happens
    to be zero, including it is still unbiased — the realization just picks
    up a zero weight — and avoids materializing the full transition row,
    which for MHRW would query every neighbor's degree.
    """
    neighbors = view.neighbors(node)
    if design.may_self_loop:
        return neighbors + (node,)
    return neighbors


def unbiased_estimate(
    view: NeighborView,
    design: TransitionDesign,
    node: Node,
    start: Node,
    t: int,
    seed: RngLike = None,
    crawl: Optional[InitialCrawl] = None,
    max_depth: Optional[int] = None,
) -> float:
    """One unbiased realization of the estimator of ``p_t(node)``.

    Parameters
    ----------
    view:
        Neighbor view; a charged API accrues the backward walk's query cost.
    design:
        Transit design of the *forward* walk being estimated.
    node:
        The node whose sampling probability is estimated.
    start:
        The forward walk's starting node ``w``.
    t:
        Forward walk length.
    crawl:
        Optional exact-probability table; when provided the recursion stops
        at depth ``crawl.hops`` and reads the exact value (variance
        reduction #1, §5.2).
    max_depth:
        Internal recursion guard; defaults to ``t``.

    Returns
    -------
    float
        A single non-negative realization with expectation ``p_t(node)``.
    """
    if t < 0:
        raise ValueError(f"t must be >= 0, got {t}")
    rng = ensure_rng(seed)
    return _backward(view, design, node, start, t, rng, crawl)


def _backward(
    view: NeighborView,
    design: TransitionDesign,
    node: Node,
    start: Node,
    t: int,
    rng: np.random.Generator,
    crawl: Optional[InitialCrawl],
) -> float:
    # Iterative form of the recursion: accumulate the product weight while
    # walking backward, so deep walks cannot hit Python's recursion limit.
    weight = 1.0
    current = node
    depth = t
    while True:
        if crawl is not None and crawl.covers_step(depth):
            return weight * crawl.probability(current, depth)
        if depth == 0:
            return weight if current == start else 0.0
        candidates = backward_candidates(view, design, current)
        predecessor = candidates[int(rng.integers(0, len(candidates)))]
        transition = design.transition_probability(view, predecessor, current)
        weight *= len(candidates) * transition
        if weight == 0.0:
            # The sampled predecessor cannot actually reach `current`
            # (e.g. a no-self-loop candidate); the realization is 0.
            return 0.0
        current = predecessor
        depth -= 1
