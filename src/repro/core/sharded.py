"""Sharded WALK-ESTIMATE front ends: K walks fanned over worker processes.

The throughput-bound WALK-ESTIMATE entry points
(:func:`~repro.core.walk_estimate.walk_estimate_batch`,
:func:`~repro.core.long_run_we.long_run_walk_estimate_batch`) advance K
walks per NumPy operation in one process.  These front ends fan the same
computations over a :class:`~repro.walks.parallel.ShardedWalkEngine`:
each worker runs the ordinary single-process batch estimator on its
contiguous shard of walks — forward walks, backward estimates,
calibration, and acceptance–rejection all happen worker-side over the
shared zero-copy topology — and the per-shard
:class:`~repro.core.walk_estimate.BatchWalkEstimateResult` records merge
back in walk order.

Each shard calibrates its own scale-factor pool (``calibration_walks``
forward walks per shard, priced into ``forward_steps``): the pool is the
one state the rejection step shares across walks, and shipping it between
processes would serialize the very phase the fan-out exists to
parallelize.  A per-shard pool drawn from the same distribution leaves
every accepted candidate target-distributed, so the merged
``result.nodes`` / ``result.weights`` feed
:func:`repro.estimators.aggregates.average_estimate_arrays` exactly as a
single-process round's do.

With one worker both front ends reproduce their single-process twins
result for result (same stream, same arithmetic) — the parity hook the
tests pin; more workers re-partition the randomness deterministically per
``(seed, n_workers)``.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.core.config import WalkEstimateConfig
from repro.core.long_run_we import long_run_walk_estimate_batch
from repro.core.walk_estimate import BatchWalkEstimateResult, walk_estimate_batch
from repro.errors import ConfigurationError
from repro.graphs.csr import CSRGraph
from repro.rng import RngLike
from repro.walks.parallel import ShardedWalkEngine
from repro.walks.transitions import Node, TransitionDesign


def _we_shard(
    csr: CSRGraph,
    design: TransitionDesign,
    start: Node,
    k_walks: int,
    config: WalkEstimateConfig,
    rng: np.random.Generator,
) -> BatchWalkEstimateResult:
    return walk_estimate_batch(csr, design, start, k_walks, config=config, seed=rng)


def _long_run_shard(
    csr: CSRGraph,
    design: TransitionDesign,
    starts: np.ndarray,
    k_runs: int,
    segments: int,
    config: WalkEstimateConfig,
    rng: np.random.Generator,
) -> BatchWalkEstimateResult:
    return long_run_walk_estimate_batch(
        csr, design, starts, k_runs, segments, config=config, seed=rng
    )


def merge_batch_results(
    parts: List[BatchWalkEstimateResult],
) -> BatchWalkEstimateResult:
    """Concatenate per-shard rounds into one walk-ordered result.

    Array fields concatenate in shard order (shards are contiguous walk
    ranges, so the merged arrays are aligned with the original walk
    indices); step counters add.
    """
    if not parts:
        raise ConfigurationError("nothing to merge: no shard results")
    if len(parts) == 1:
        return parts[0]
    return BatchWalkEstimateResult(
        candidates=np.concatenate([p.candidates for p in parts]),
        estimates=np.concatenate([p.estimates for p in parts]),
        target_weights=np.concatenate([p.target_weights for p in parts]),
        acceptance=np.concatenate([p.acceptance for p in parts]),
        accepted=np.concatenate([p.accepted for p in parts]),
        forward_steps=sum(p.forward_steps for p in parts),
        backward_steps=sum(p.backward_steps for p in parts),
    )


def walk_estimate_sharded(
    engine: ShardedWalkEngine,
    design: TransitionDesign,
    start: Node,
    k_walks: int,
    config: Optional[WalkEstimateConfig] = None,
    seed: RngLike = None,
) -> BatchWalkEstimateResult:
    """Sharded :func:`~repro.core.walk_estimate.walk_estimate_batch`.

    Splits *k_walks* into per-worker shards, runs one vectorized
    WALK-ESTIMATE round per shard over the engine's shared topology, and
    merges the verdicts in walk order.  Same contract as the
    single-process round; at ``n_workers=1`` the result is identical to
    it for the same seed.

    Parameters mirror :func:`walk_estimate_batch`, with *engine* replacing
    the graph.  Feed the merged ``result.nodes`` / ``result.weights`` to
    :func:`~repro.estimators.aggregates.average_estimate_arrays` for
    population aggregates.

    .. note:: **Compatibility front end.**  Prefer
       :func:`repro.core.estimate` with ``EngineConfig(backend="sharded")``;
       this signature stays as a thin, parity-pinned shim.
    """
    if k_walks < 1:
        raise ConfigurationError(f"k_walks must be >= 1, got {k_walks}")
    config = config if config is not None else WalkEstimateConfig()
    slices = engine.shard_slices(k_walks)
    rngs = engine.shard_rngs(len(slices), seed)
    tasks = [
        (design, start, s.stop - s.start, config, rng)
        for s, rng in zip(slices, rngs)
    ]
    return merge_batch_results(engine.map_shards(_we_shard, tasks))


def long_run_walk_estimate_sharded(
    engine: ShardedWalkEngine,
    design: TransitionDesign,
    start,
    k_runs: int,
    segments: int,
    config: Optional[WalkEstimateConfig] = None,
    seed: RngLike = None,
) -> BatchWalkEstimateResult:
    """Sharded :func:`~repro.core.long_run_we.long_run_walk_estimate_batch`.

    Each worker advances its shard of the K continuous long runs —
    calibration prefix, per-segment backward estimates, and vectorized
    acceptance — and the per-shard results merge run-major, so candidate
    ``i * segments + j`` is run *i*'s segment *j* exactly as in the
    single-process form.  *start* is one node or an array of ``k_runs``
    nodes.

    .. note:: **Compatibility front end.**  Prefer
       :func:`repro.core.estimate` with ``EngineConfig(backend="sharded",
       long_run=True)``; this signature stays as a thin, parity-pinned
       shim.
    """
    if k_runs < 1:
        raise ConfigurationError(f"k_runs must be >= 1, got {k_runs}")
    if segments < 1:
        raise ConfigurationError(f"segments must be >= 1, got {segments}")
    config = config if config is not None else WalkEstimateConfig()
    starts = np.asarray(start, dtype=np.int64)
    if starts.ndim == 0:
        starts = np.full(k_runs, int(starts), dtype=np.int64)
    elif starts.shape != (k_runs,):
        raise ConfigurationError(
            f"start must be one node or an array of {k_runs} nodes; got "
            f"shape {starts.shape}"
        )
    slices = engine.shard_slices(k_runs)
    rngs = engine.shard_rngs(len(slices), seed)
    tasks = [
        (design, starts[s], s.stop - s.start, segments, config, rng)
        for s, rng in zip(slices, rngs)
    ]
    return merge_batch_results(engine.map_shards(_long_run_shard, tasks))
