"""WALK-ESTIMATE: the paper's primary contribution.

The sampler replaces the long burn-in "wait" with a short WALK plus a
proactive ESTIMATE of the candidate's sampling probability, corrected to the
target distribution by acceptance–rejection:

* :class:`WalkEstimateConfig` — all knobs with the paper's defaults;
* :class:`InitialCrawl` — h-hop crawl with an exact ``p_s(v), s ≤ h`` table;
* :func:`unbiased_estimate` — UNBIASED-ESTIMATE (Algorithm 1);
* :class:`ForwardHistory` / :func:`weighted_backward_estimate` — WS-BW
  (Algorithm 2, importance-corrected) — plus :func:`ws_bw_batch`, the
  crawl-aware batched form for the charged-API regime (K backward walks
  per array operation, scalar-parity at K=1);
* :class:`ProbabilityEstimator` — ESTIMATE with variance-proportional
  repetition budget (Algorithm 3);
* :class:`RejectionSampler` — acceptance–rejection with the bootstrapped
  scale factor (§6.3.2);
* :class:`WalkEstimateSampler` — the full algorithm, plus the ablation
  variants WE-None / WE-Crawl / WE-Weighted (§7.1);
* :class:`IdealWalk` — the oracle IDEAL-WALK used in the theory (§4.1);
* :class:`LongRunWalkEstimateSampler` /
  :func:`long_run_walk_estimate_batch` — WALK-ESTIMATE over one (or K
  simultaneous) continuous long runs (§6.1 future work).
"""

from repro.core.config import CrawlPipelineConfig, WalkEstimateConfig
from repro.core.crawl import InitialCrawl
from repro.core.unbiased import (
    backward_candidates,
    unbiased_estimate,
    unbiased_estimate_batch,
)
from repro.core.weighted import (
    BackwardStats,
    ForwardHistory,
    weighted_backward_estimate,
    ws_bw_batch,
)
from repro.core.estimate import ProbabilityEstimate, ProbabilityEstimator
from repro.core.rejection import RejectionSampler, ScaleFactorBootstrap
from repro.core.walk_estimate import (
    BatchWalkEstimateResult,
    SampleRecord,
    WalkEstimateSampler,
    walk_estimate_batch,
    we_crawl_sampler,
    we_full_sampler,
    we_none_sampler,
    we_weighted_sampler,
)
from repro.core.ideal import IdealWalk
from repro.core.long_run_we import (
    LongRunWalkEstimateSampler,
    long_run_walk_estimate_batch,
)
from repro.core.sharded import (
    long_run_walk_estimate_sharded,
    merge_batch_results,
    walk_estimate_sharded,
)

# The unified front door (PR 6).  Imported last on purpose: binding the
# `estimate` *function* here shadows the `repro.core.estimate` submodule
# attribute, which is intended — `from repro.core.estimate import X` keeps
# working through sys.modules, while `repro.core.estimate(job)` becomes the
# one public dispatch call the CLI, examples, and service all route through.
from repro.core.dispatch import (
    EngineConfig,
    EstimateResult,
    EstimationJobSpec,
    design_from_spec,
    design_to_spec,
    estimate,
)

__all__ = [
    "estimate",
    "EstimationJobSpec",
    "EngineConfig",
    "EstimateResult",
    "design_from_spec",
    "design_to_spec",
    "CrawlPipelineConfig",
    "WalkEstimateConfig",
    "InitialCrawl",
    "unbiased_estimate",
    "unbiased_estimate_batch",
    "backward_candidates",
    "BackwardStats",
    "ForwardHistory",
    "weighted_backward_estimate",
    "ws_bw_batch",
    "ProbabilityEstimator",
    "ProbabilityEstimate",
    "RejectionSampler",
    "ScaleFactorBootstrap",
    "WalkEstimateSampler",
    "SampleRecord",
    "walk_estimate_batch",
    "BatchWalkEstimateResult",
    "we_none_sampler",
    "we_crawl_sampler",
    "we_weighted_sampler",
    "we_full_sampler",
    "IdealWalk",
    "LongRunWalkEstimateSampler",
    "long_run_walk_estimate_batch",
    "walk_estimate_sharded",
    "long_run_walk_estimate_sharded",
    "merge_batch_results",
]
