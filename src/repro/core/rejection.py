"""Acceptance–rejection with a bootstrapped scale factor (paper §2.3, §6.3.2).

Rejection sampling corrects a sample drawn with probability ``p(u)`` to a
target ``q(u)`` by accepting with probability

    β(u) = (q(u) / p(u)) · min_v p(v)/q(v).

Targets are handled *unnormalized* (``q̃``; degree for SRW, 1 for MHRW) —
the normalizer cancels inside β, which is what makes the method usable when
``|V|`` is unknown.  The exact ``min_v p(v)/q̃(v)`` needs global knowledge,
so, following §6.3.2, :class:`ScaleFactorBootstrap` tracks the observed
ratios ``p̂(v)/q̃(v)`` and uses their 10th percentile as the scale factor;
β is clamped to 1, trading a small bias for efficiency exactly as the paper
describes.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.errors import ConfigurationError, EstimationError
from repro.rng import RngLike, ensure_rng


class ScaleFactorBootstrap:
    """Running estimate of ``min_v p(v)/q̃(v)`` from observed ratios."""

    def __init__(self, percentile: float = 10.0, minimum_observations: int = 5) -> None:
        if not 0.0 < percentile < 100.0:
            raise ConfigurationError(
                f"percentile must be in (0, 100), got {percentile}"
            )
        if minimum_observations < 1:
            raise ConfigurationError(
                f"minimum_observations must be >= 1, got {minimum_observations}"
            )
        self.percentile = percentile
        self.minimum_observations = minimum_observations
        self._ratios: List[float] = []

    def observe(self, ratio: float) -> None:
        """Record one observed ``p̂(v)/q̃(v)`` (non-finite/negative dropped).

        Zero ratios are kept out of the pool: a ``p̂ = 0`` estimate carries
        no scale information (it would drive the factor to 0, accepting
        everything and destroying the correction).
        """
        if ratio > 0.0 and np.isfinite(ratio):
            self._ratios.append(float(ratio))

    def observe_many(self, ratios) -> None:
        """Record a whole array of ratios at once (same filtering rules)."""
        ratios = np.asarray(ratios, dtype=float)
        kept = ratios[(ratios > 0.0) & np.isfinite(ratios)]
        self._ratios.extend(kept.tolist())

    @property
    def observation_count(self) -> int:
        """Number of usable ratios recorded."""
        return len(self._ratios)

    @property
    def ready(self) -> bool:
        """True once enough ratios exist for a stable percentile."""
        return len(self._ratios) >= self.minimum_observations

    def ensure_ready(self, neutral: float = 1.0) -> None:
        """Pad the pool with *neutral* ratios until :attr:`ready`.

        The degenerate-calibration fallback every WALK-ESTIMATE front end
        shares: when calibration produced no usable ratios (e.g. every
        estimate was 0), a neutral scale lets sampling proceed while the
        pool keeps filling with real observations.
        """
        while not self.ready:
            self.observe(neutral)

    def scale_factor(self) -> float:
        """The bootstrapped stand-in for ``min_v p(v)/q̃(v)``.

        Raises
        ------
        EstimationError
            If called before :attr:`ready`.
        """
        if not self._ratios:
            raise EstimationError("no ratios observed yet")
        if not self.ready:
            raise EstimationError(
                f"need {self.minimum_observations} ratios, have {len(self._ratios)}"
            )
        return float(np.percentile(self._ratios, self.percentile))


class RejectionSampler:
    """Accept/reject decisions against an unnormalized target.

    Parameters
    ----------
    bootstrap:
        The scale-factor tracker (shared with the calibration phase).
    seed:
        RNG for the acceptance coin flips.
    """

    def __init__(self, bootstrap: ScaleFactorBootstrap, seed: RngLike = None) -> None:
        self.bootstrap = bootstrap
        self._rng = ensure_rng(seed)
        self.accepted = 0
        self.rejected = 0

    def acceptance_probability(self, estimated_p: float, target_weight: float) -> float:
        """β(u) = clamp(scale / (p̂(u)/q̃(u)), ≤ 1).

        A ``p̂ = 0`` estimate yields β = 1: the walk thinks the node was
        (nearly) unreachable, so it is certainly not over-represented.
        """
        if target_weight <= 0.0:
            raise ConfigurationError(
                f"target weight must be positive, got {target_weight}"
            )
        if estimated_p < 0.0:
            raise EstimationError(f"negative probability estimate {estimated_p}")
        scale = self.bootstrap.scale_factor()
        if estimated_p == 0.0:
            return 1.0
        ratio = estimated_p / target_weight
        return min(1.0, scale / ratio)

    def accept(self, estimated_p: float, target_weight: float) -> bool:
        """Flip the β(u) coin; also feeds the ratio back into the bootstrap.

        Feeding every decision's ratio back keeps the scale factor adaptive
        as more of the graph is seen (the paper bootstraps "based on the
        samples already observed").
        """
        beta = self.acceptance_probability(estimated_p, target_weight)
        if target_weight > 0.0 and estimated_p > 0.0:
            self.bootstrap.observe(estimated_p / target_weight)
        accepted = bool(self._rng.random() < beta)
        if accepted:
            self.accepted += 1
        else:
            self.rejected += 1
        return accepted

    # ------------------------------------------------------------------
    # Vectorized batch decisions
    # ------------------------------------------------------------------
    def acceptance_probabilities(self, estimated_p, target_weights) -> np.ndarray:
        """β(u) for aligned arrays of estimates and target weights.

        Vectorized :meth:`acceptance_probability`: one clamp and one
        division decide every candidate of a batch simultaneously.
        """
        estimated = np.asarray(estimated_p, dtype=float)
        targets = np.asarray(target_weights, dtype=float)
        if np.any(targets <= 0.0):
            bad = float(targets[targets <= 0.0][0])
            raise ConfigurationError(f"target weight must be positive, got {bad}")
        if np.any(estimated < 0.0):
            bad = float(estimated[estimated < 0.0][0])
            raise EstimationError(f"negative probability estimate {bad}")
        scale = self.bootstrap.scale_factor()
        betas = np.ones_like(estimated)
        positive = estimated > 0.0
        betas[positive] = np.minimum(
            1.0, scale * targets[positive] / estimated[positive]
        )
        return betas

    def accept_batch(
        self, estimated_p, target_weights
    ) -> tuple[np.ndarray, np.ndarray]:
        """Flip every candidate's β(u) coin at once.

        Returns ``(accepted, betas)`` — the bool decision mask and the
        acceptance probabilities the coins were flipped against, computed
        once so callers never hold betas that diverge from the decisions.
        Like :meth:`accept`, every positive ratio feeds back into the
        bootstrap pool, keeping the scale factor adaptive as the batch's
        candidates are seen.
        """
        betas = self.acceptance_probabilities(estimated_p, target_weights)
        estimated = np.asarray(estimated_p, dtype=float)
        targets = np.asarray(target_weights, dtype=float)
        self.bootstrap.observe_many(estimated / targets)
        accepted = self._rng.random(betas.size) < betas
        self.accepted += int(accepted.sum())
        self.rejected += int(betas.size - accepted.sum())
        return accepted, betas

    @property
    def acceptance_rate(self) -> float:
        """Empirical acceptance rate over all decisions so far."""
        total = self.accepted + self.rejected
        if total == 0:
            return 0.0
        return self.accepted / total
