"""WS-BW: weighted-sampling backward walk (paper Algorithm 2).

Variance-reduction heuristic #2 (§5.3).  The plain backward walk picks a
predecessor uniformly, but the predecessors' ``p_{t-1}`` values vary wildly;
spending the draw on high-probability predecessors cuts variance.  WS-BW
biases the backward step toward predecessors that *historic forward walks*
(all started from the same node) actually visited at the matching step:

    π(x) ∝ n_{x, s-1} + c,     c = max(1, ε·total / ((1-ε)·|C|)),

with ``n_{x,s}`` the number of forward walks that sat at ``x`` after step
``s`` and ``total`` their sum over the candidate set.  This is a
Laplace-smoothed version of the paper's ε-mixture
(``ε/|C| + (1-ε)·n/total``): when history is rich the uniform share tends
to ε exactly as in the paper, and when history is sparse the proposal
degrades gracefully to uniform instead of putting ~ε mass on candidates the
history merely hasn't seen yet.  The distinction matters enormously in
practice — with the paper's raw mixture, picking an unvisited candidate
multiplies the importance weight by up to ``|C|/ε``, and a few such steps
produce a realization distribution whose median sits orders of magnitude
below its mean (measured on BA(1000, 7): relative std ≈ 50 for the raw
mixture vs ≈ 4 for the smoothed proposal).

**Importance correction.**  The paper's pseudocode returns
``|N(u)|/|N(v)| × WS-BW(v, …)`` regardless of π, which is only unbiased for
uniform π.  We return ``T(x, u) / π(x) × WS-BW(x, …)`` — the standard
importance-sampling weight, which reduces to the paper's expression when π
is uniform and keeps the estimator unbiased for *any* valid π (this is what
the paper's own unbiasedness argument, Eq. 22–24, requires).  DESIGN.md
documents both deviations; tests verify unbiasedness by exhaustive
enumeration.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro.core.crawl import InitialCrawl
from repro.core.unbiased import backward_candidates
from repro.errors import ConfigurationError
from repro.rng import RngLike, ensure_rng
from repro.walks.transitions import NeighborView, Node, TransitionDesign
from repro.walks.walker import WalkResult


@dataclass
class BackwardStats:
    """Mutable counters for backward-walk effort (Figure 5's step count)."""

    steps: int = 0
    walks: int = 0


class ForwardHistory:
    """Visit counts of historic forward walks, indexed by (step, node).

    All recorded walks must share one starting node and walk length — the
    WS-BW weights are only meaningful under that invariant, so it is
    enforced at record time.
    """

    def __init__(self, start: Node, walk_length: int) -> None:
        if walk_length < 0:
            raise ConfigurationError(f"walk_length must be >= 0, got {walk_length}")
        self.start = start
        self.walk_length = walk_length
        self._counts: list[Dict[Node, int]] = [
            {} for _ in range(walk_length + 1)
        ]
        self._total_walks = 0

    def record(self, walk: WalkResult) -> None:
        """Add one forward trajectory to the history.

        Raises
        ------
        ConfigurationError
            If the walk's start or length does not match this history.
        """
        if walk.start != self.start:
            raise ConfigurationError(
                f"walk starts at {walk.start}, history expects {self.start}"
            )
        if walk.steps != self.walk_length:
            raise ConfigurationError(
                f"walk has {walk.steps} steps, history expects {self.walk_length}"
            )
        for step, node in enumerate(walk.path):
            counts = self._counts[step]
            counts[node] = counts.get(node, 0) + 1
        self._total_walks += 1

    @property
    def total_walks(self) -> int:
        """Number of recorded forward walks (the paper's ``n_hw``)."""
        return self._total_walks

    def count(self, node: Node, step: int) -> int:
        """``n_{node, step}``: walks that occupied *node* after *step* steps."""
        if not 0 <= step <= self.walk_length:
            return 0
        return self._counts[step].get(node, 0)

    def counts_at(self, step: int) -> Dict[Node, int]:
        """The full visit-count map for one step (live view, do not mutate)."""
        if not 0 <= step <= self.walk_length:
            return {}
        return self._counts[step]


def smoothing_constant(total_visits: int, k: int, epsilon: float) -> float:
    """The Laplace constant ``c`` for the smoothed WS-BW proposal.

    Chosen so the proposal's uniform share approaches ε as history grows
    (``c·k / (total + c·k) → ε``) while never dropping below 1 — a floor
    that keeps sparse-history proposals close to uniform.
    """
    if total_visits <= 0:
        return 1.0
    return max(1.0, epsilon * total_visits / ((1.0 - epsilon) * k))


def backward_step_distribution(
    candidates: tuple[Node, ...],
    history: Optional[ForwardHistory],
    step: int,
    epsilon: float,
) -> np.ndarray:
    """WS-BW's π over *candidates* for predecessors at forward step *step*.

    ``π(x) ∝ visits(x) + c`` with the smoothing constant above; uniform when
    there is no history.  Every candidate keeps positive mass, preserving
    unbiasedness of the importance-weighted estimator.
    """
    k = len(candidates)
    if k == 0:
        raise ConfigurationError("empty candidate set")
    if history is None or history.total_walks == 0:
        return np.full(k, 1.0 / k)
    visits = np.array(
        [history.count(c, step) for c in candidates], dtype=float
    )
    total = int(visits.sum())
    c = smoothing_constant(total, k, epsilon)
    return (visits + c) / (total + c * k)


def weighted_backward_estimate(
    view: NeighborView,
    design: TransitionDesign,
    node: Node,
    start: Node,
    t: int,
    history: Optional[ForwardHistory],
    epsilon: float = 0.1,
    seed: RngLike = None,
    crawl: Optional[InitialCrawl] = None,
    stats: Optional[BackwardStats] = None,
) -> float:
    """One realization of the WS-BW estimator of ``p_t(node)``.

    With ``history=None`` this degrades gracefully to the uniform backward
    walk (identical in law to :func:`repro.core.unbiased.unbiased_estimate`).
    *stats*, when given, accumulates the number of backward transitions
    taken — the effort measure of the paper's Figure 5.
    """
    if t < 0:
        raise ValueError(f"t must be >= 0, got {t}")
    if not 0.0 < epsilon <= 1.0:
        raise ConfigurationError(f"epsilon must be in (0, 1], got {epsilon}")
    rng = ensure_rng(seed)
    if stats is not None:
        stats.walks += 1
    weight = 1.0
    current = node
    depth = t
    while True:
        if crawl is not None and crawl.covers_step(depth):
            return weight * crawl.probability(current, depth)
        if depth == 0:
            return weight if current == start else 0.0
        candidates = backward_candidates(view, design, current)
        k = len(candidates)
        # Pick a predecessor index and its probability π(x).  The uniform
        # fast path avoids per-step overhead — this loop dominates
        # WALK-ESTIMATE's wall-clock time.
        visit_counts = history.counts_at(depth - 1) if history is not None else None
        total_visits = 0
        visits: list[int] = []
        if visit_counts:
            visits = [visit_counts.get(c, 0) for c in candidates]
            total_visits = sum(visits)
        if total_visits == 0:
            index = int(rng.integers(0, k))
            pi_x = 1.0 / k
        else:
            c = smoothing_constant(total_visits, k, epsilon)
            normalizer = total_visits + c * k
            draw = rng.random() * normalizer
            acc = 0.0
            index = k - 1
            for i, v in enumerate(visits):
                acc += v + c
                if draw < acc:
                    index = i
                    break
            pi_x = (visits[index] + c) / normalizer
        predecessor = candidates[index]
        if stats is not None:
            stats.steps += 1
        transition = design.transition_probability(view, predecessor, current)
        # Importance weight: T(x, u) / π(x) — see module docstring.
        weight *= transition / pi_x
        if weight == 0.0:
            return 0.0
        current = predecessor
        depth -= 1
