"""WS-BW: weighted-sampling backward walk (paper Algorithm 2).

Variance-reduction heuristic #2 (§5.3).  The plain backward walk picks a
predecessor uniformly, but the predecessors' ``p_{t-1}`` values vary wildly;
spending the draw on high-probability predecessors cuts variance.  WS-BW
biases the backward step toward predecessors that *historic forward walks*
(all started from the same node) actually visited at the matching step:

    π(x) ∝ n_{x, s-1} + c,     c = max(1, ε·total / ((1-ε)·|C|)),

with ``n_{x,s}`` the number of forward walks that sat at ``x`` after step
``s`` and ``total`` their sum over the candidate set.  This is a
Laplace-smoothed version of the paper's ε-mixture
(``ε/|C| + (1-ε)·n/total``): when history is rich the uniform share tends
to ε exactly as in the paper, and when history is sparse the proposal
degrades gracefully to uniform instead of putting ~ε mass on candidates the
history merely hasn't seen yet.  The distinction matters enormously in
practice — with the paper's raw mixture, picking an unvisited candidate
multiplies the importance weight by up to ``|C|/ε``, and a few such steps
produce a realization distribution whose median sits orders of magnitude
below its mean (measured on BA(1000, 7): relative std ≈ 50 for the raw
mixture vs ≈ 4 for the smoothed proposal).

**Importance correction.**  The paper's pseudocode returns
``|N(u)|/|N(v)| × WS-BW(v, …)`` regardless of π, which is only unbiased for
uniform π.  We return ``T(x, u) / π(x) × WS-BW(x, …)`` — the standard
importance-sampling weight, which reduces to the paper's expression when π
is uniform and keeps the estimator unbiased for *any* valid π (this is what
the paper's own unbiasedness argument, Eq. 22–24, requires).  DESIGN.md
documents both deviations; tests verify unbiasedness by exhaustive
enumeration.

**Two grains.**  :func:`weighted_backward_estimate` is the scalar
reference: one walk, one realization.  :func:`ws_bw_batch` is its
charged-API batch twin: K backward walks advance per depth level over one
shared :class:`ForwardHistory`, the proposal/pick/importance arithmetic is
vectorized, and every neighbor fetch goes through the view's batch
interface — so a :class:`~repro.osn.api.SocialNetworkAPI` charges each
level in one accounting operation against its discovered-graph store
(§2.4: the first access to a node costs one query, every repeat is a free
cache hit, so batching never changes what a campaign pays — only how fast
it runs).  At K = 1 the batch consumes the RNG stream exactly as the
scalar does and reproduces its realization bit for bit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from repro.arrays import sorted_lookup
from repro.core.crawl import InitialCrawl
from repro.core.unbiased import backward_candidates
from repro.errors import ConfigurationError, GraphError
from repro.graphs.discovered import DiscoveredGraph
from repro.rng import RngLike, ensure_rng
from repro.walks.transitions import (
    LazyWalk,
    MaxDegreeWalk,
    MetropolisHastingsWalk,
    NeighborView,
    Node,
    SimpleRandomWalk,
    TransitionDesign,
)
from repro.walks.walker import WalkResult


@dataclass
class BackwardStats:
    """Mutable counters for backward-walk effort (Figure 5's step count)."""

    steps: int = 0
    walks: int = 0


class ForwardHistory:
    """Visit counts of historic forward walks, indexed by (step, node).

    All recorded walks must share one starting node and walk length — the
    WS-BW weights are only meaningful under that invariant, so it is
    enforced at record time.
    """

    def __init__(self, start: Node, walk_length: int) -> None:
        if walk_length < 0:
            raise ConfigurationError(f"walk_length must be >= 0, got {walk_length}")
        self.start = start
        self.walk_length = walk_length
        self._counts: list[Dict[Node, int]] = [
            {} for _ in range(walk_length + 1)
        ]
        self._arrays: list[Optional[Tuple[np.ndarray, np.ndarray]]] = [
            None
        ] * (walk_length + 1)
        self._dense: list[Optional[np.ndarray]] = [None] * (walk_length + 1)
        self._total_walks = 0

    def record(self, walk: WalkResult) -> None:
        """Add one forward trajectory to the history.

        Raises
        ------
        ConfigurationError
            If the walk's start or length does not match this history.
        """
        if walk.start != self.start:
            raise ConfigurationError(
                f"walk starts at {walk.start}, history expects {self.start}"
            )
        if walk.steps != self.walk_length:
            raise ConfigurationError(
                f"walk has {walk.steps} steps, history expects {self.walk_length}"
            )
        for step, node in enumerate(walk.path):
            counts = self._counts[step]
            counts[node] = counts.get(node, 0) + 1
        self._arrays = [None] * (self.walk_length + 1)
        self._dense = [None] * (self.walk_length + 1)
        self._total_walks += 1

    @property
    def total_walks(self) -> int:
        """Number of recorded forward walks (the paper's ``n_hw``)."""
        return self._total_walks

    def count(self, node: Node, step: int) -> int:
        """``n_{node, step}``: walks that occupied *node* after *step* steps."""
        if not 0 <= step <= self.walk_length:
            return 0
        return self._counts[step].get(node, 0)

    def counts_at(self, step: int) -> Dict[Node, int]:
        """The full visit-count map for one step (live view, do not mutate)."""
        if not 0 <= step <= self.walk_length:
            return {}
        return self._counts[step]

    def counts_arrays(self, step: int) -> Tuple[np.ndarray, np.ndarray]:
        """One step's visit counts as sorted ``(node ids, counts)`` arrays.

        The array form of :meth:`counts_at` — rebuilt lazily after each
        :meth:`record`, then reused, so a K-wide batched backward walk
        resolves every candidate's visit count with one binary search
        instead of K dict probes.  Out-of-range steps yield empty arrays.
        """
        if not 0 <= step <= self.walk_length:
            return _EMPTY_IDS, _EMPTY_COUNTS
        cached = self._arrays[step]
        if cached is None:
            counts = self._counts[step]
            ids = np.fromiter(counts, dtype=np.int64, count=len(counts))
            values = np.fromiter(counts.values(), dtype=np.int64, count=ids.size)
            order = np.argsort(ids)
            cached = (ids[order], values[order])
            self._arrays[step] = cached
        return cached

    def counts_dense(self, step: int) -> Optional[np.ndarray]:
        """One step's visit counts as a dense id-indexed float vector.

        Turns the per-candidate count lookup into a single gather — the
        fastest path for the batched backward walk.  Returns None when the
        step is out of range, empty, or the visited ids are too large for
        a dense table (callers fall back to :meth:`counts_arrays`).
        """
        if not 0 <= step <= self.walk_length:
            return None
        cached = self._dense[step]
        if cached is None:
            ids, counts = self.counts_arrays(step)
            if ids.size == 0 or ids[0] < 0 or ids[-1] >= _DENSE_COUNT_LIMIT:
                return None
            cached = np.zeros(int(ids[-1]) + 1, dtype=np.float64)
            cached[ids] = counts
            self._dense[step] = cached
        return cached


_EMPTY_IDS = np.zeros(0, dtype=np.int64)
_EMPTY_COUNTS = np.zeros(0, dtype=np.int64)

#: Ceiling for dense per-step count tables (8 MB of float64 per step).
_DENSE_COUNT_LIMIT = 1 << 20


def smoothing_constant(total_visits: int, k: int, epsilon: float) -> float:
    """The Laplace constant ``c`` for the smoothed WS-BW proposal.

    Chosen so the proposal's uniform share approaches ε as history grows
    (``c·k / (total + c·k) → ε``) while never dropping below 1 — a floor
    that keeps sparse-history proposals close to uniform.
    """
    if total_visits <= 0:
        return 1.0
    return max(1.0, epsilon * total_visits / ((1.0 - epsilon) * k))


def backward_step_distribution(
    candidates: tuple[Node, ...],
    history: Optional[ForwardHistory],
    step: int,
    epsilon: float,
) -> np.ndarray:
    """WS-BW's π over *candidates* for predecessors at forward step *step*.

    ``π(x) ∝ visits(x) + c`` with the smoothing constant above; uniform when
    there is no history.  Every candidate keeps positive mass, preserving
    unbiasedness of the importance-weighted estimator.
    """
    k = len(candidates)
    if k == 0:
        raise ConfigurationError("empty candidate set")
    if history is None or history.total_walks == 0:
        return np.full(k, 1.0 / k)
    visits = np.array(
        [history.count(c, step) for c in candidates], dtype=float
    )
    total = int(visits.sum())
    c = smoothing_constant(total, k, epsilon)
    return (visits + c) / (total + c * k)


def weighted_backward_estimate(
    view: NeighborView,
    design: TransitionDesign,
    node: Node,
    start: Node,
    t: int,
    history: Optional[ForwardHistory],
    epsilon: float = 0.1,
    seed: RngLike = None,
    crawl: Optional[InitialCrawl] = None,
    stats: Optional[BackwardStats] = None,
) -> float:
    """One realization of the WS-BW estimator of ``p_t(node)``.

    With ``history=None`` this degrades gracefully to the uniform backward
    walk (identical in law to :func:`repro.core.unbiased.unbiased_estimate`).
    *stats*, when given, accumulates the number of backward transitions
    taken — the effort measure of the paper's Figure 5.
    """
    if t < 0:
        raise ValueError(f"t must be >= 0, got {t}")
    if not 0.0 < epsilon <= 1.0:
        raise ConfigurationError(f"epsilon must be in (0, 1], got {epsilon}")
    rng = ensure_rng(seed)
    if stats is not None:
        stats.walks += 1
    weight = 1.0
    current = node
    depth = t
    while True:
        if crawl is not None and crawl.covers_step(depth):
            return weight * crawl.probability(current, depth)
        if depth == 0:
            return weight if current == start else 0.0
        candidates = backward_candidates(view, design, current)
        k = len(candidates)
        # Pick a predecessor index and its probability π(x).  The uniform
        # fast path avoids per-step overhead — this loop dominates
        # WALK-ESTIMATE's wall-clock time.
        visit_counts = history.counts_at(depth - 1) if history is not None else None
        total_visits = 0
        visits: list[int] = []
        if visit_counts:
            visits = [visit_counts.get(c, 0) for c in candidates]
            total_visits = sum(visits)
        if total_visits == 0:
            index = int(rng.integers(0, k))
            pi_x = 1.0 / k
        else:
            c = smoothing_constant(total_visits, k, epsilon)
            normalizer = total_visits + c * k
            draw = rng.random() * normalizer
            acc = 0.0
            index = k - 1
            for i, v in enumerate(visits):
                acc += v + c
                if draw < acc:
                    index = i
                    break
            pi_x = (visits[index] + c) / normalizer
        predecessor = candidates[index]
        if stats is not None:
            stats.steps += 1
        transition = design.transition_probability(view, predecessor, current)
        # Importance weight: T(x, u) / π(x) — see module docstring.
        weight *= transition / pi_x
        if weight == 0.0:
            return 0.0
        current = predecessor
        depth -= 1


# ----------------------------------------------------------------------
# Vectorized batch WS-BW (charged-API backend)
# ----------------------------------------------------------------------
def smoothing_constants(
    total_visits: np.ndarray, k: np.ndarray, epsilon: float
) -> np.ndarray:
    """Vectorized :func:`smoothing_constant` for aligned total/size arrays."""
    total_visits = np.asarray(total_visits, dtype=np.float64)
    k = np.asarray(k, dtype=np.float64)
    out = np.ones(total_visits.shape, dtype=np.float64)
    positive = total_visits > 0
    out[positive] = np.maximum(
        1.0, epsilon * total_visits[positive] / ((1.0 - epsilon) * k[positive])
    )
    return out


def has_batched_transition(design: TransitionDesign) -> bool:
    """True if :func:`ws_bw_batch` supports *design*'s transition law.

    The predicate twin of :func:`_require_batchable`, for call sites that
    fall back to the scalar estimator instead of raising (e.g. the
    ``batch_backward`` config flag).
    """
    if isinstance(design, LazyWalk):
        return has_batched_transition(design.inner)
    batchable = (SimpleRandomWalk, MetropolisHastingsWalk, MaxDegreeWalk)
    return isinstance(design, batchable)


def _require_batchable(design: TransitionDesign) -> None:
    """Reject unsupported designs before any query is charged.

    The design is fully known at entry; discovering it mid-walk (as the
    transition kernel otherwise would at the end of the first level)
    would burn real budget and rate-limit tokens on an invalid argument.
    """
    if isinstance(design, LazyWalk):
        _require_batchable(design.inner)
        return
    if not isinstance(
        design, (SimpleRandomWalk, MetropolisHastingsWalk, MaxDegreeWalk)
    ):
        raise ConfigurationError(
            f"design {design.name!r} has no batched transition probability; "
            "use the scalar weighted_backward_estimate"
        )


class _CachingView:
    """Adapter giving a free :class:`NeighborView` the charged batch surface.

    The batched walk is written once, against ``degrees_batch`` plus a
    :class:`~repro.graphs.discovered.DiscoveredGraph` row store — exactly
    what :class:`~repro.osn.api.SocialNetworkAPI` exposes.  Wrapping a
    plain graph in this adapter (fetch rows on first miss, memoize them
    in a private store) lets free in-memory views run the same code path
    with no accounting and no second implementation to keep in sync.
    """

    cacheable = True
    restriction = None

    def __init__(self, view: NeighborView) -> None:
        self._view = view
        self.discovered = DiscoveredGraph(name="ws-bw-view")

    def degrees_batch(self, nodes) -> np.ndarray:
        degrees, known = self.discovered.try_degrees(nodes)
        if not np.all(known):
            for node in np.unique(nodes[~known]).tolist():
                self.discovered.record(node, self._view.neighbors(node))
            degrees, _ = self.discovered.try_degrees(nodes)
        return degrees


def _require_rows_alive(nodes: np.ndarray, degrees: np.ndarray) -> None:
    if np.any(degrees == 0):
        stuck = int(nodes[degrees == 0][0])
        raise GraphError(f"random walk stuck: node {stuck} has no neighbors")


def _segment_sums(values: np.ndarray, lengths: np.ndarray) -> np.ndarray:
    """Left-to-right per-segment sums (np.cumsum adds sequentially, so the
    first segment — the only one at K = 1 — is bit-identical to a scalar
    accumulator; reduceat's pairwise order would not be)."""
    bounds = np.cumsum(lengths)
    cumulative = np.cumsum(values)
    return cumulative[bounds - 1] - np.concatenate(
        ([0.0], cumulative[bounds[:-1] - 1])
    )


def _transition_batch(
    view,
    design: TransitionDesign,
    predecessors: np.ndarray,
    currents: np.ndarray,
    pred_degrees: np.ndarray,
    current_degrees: np.ndarray,
    symmetric: bool,
) -> np.ndarray:
    """``T(predecessor, current)`` per walk, scalar-identical in value and
    query footprint.

    Membership and rows come straight from the view's
    :class:`~repro.graphs.discovered.DiscoveredGraph` store (all
    predecessors/currents are fetched by the time this runs), and the MHRW
    self-loop's neighbor degrees go through ``degrees_batch`` — charging
    exactly the nodes the scalar full-row computation charges.

    *symmetric* asserts the view's visible edge relation is symmetric
    (unrestricted API): every non-self predecessor was drawn from the
    current node's row, so the reverse membership check — what the scalar
    ``destination not in neighbors`` scan establishes — is a tautology
    and skipped.  Restricted views must pass False: types 2/3 make
    visibility asymmetric, and a failed reverse check is exactly what
    zeroes the realization there.
    """
    discovered = view.discovered
    _require_rows_alive(predecessors, pred_degrees)
    if isinstance(design, SimpleRandomWalk):
        if symmetric:
            member = predecessors != currents
        else:
            member = discovered.rows_contain(predecessors, currents)
        out = np.zeros(predecessors.size, dtype=np.float64)
        out[member] = 1.0 / pred_degrees[member]
        return out
    if isinstance(design, MetropolisHastingsWalk):
        out = np.zeros(predecessors.size, dtype=np.float64)
        loops = predecessors == currents
        edges = np.flatnonzero(~loops)
        if edges.size:
            if symmetric:
                hit = edges
            else:
                member = discovered.rows_contain(
                    predecessors[edges], currents[edges]
                )
                hit = edges[member]
            dp = pred_degrees[hit].astype(np.float64)
            dc = current_degrees[hit].astype(np.float64)
            out[hit] = (1.0 / dp) * np.minimum(1.0, dp / dc)
        loop_idx = np.flatnonzero(loops)
        if loop_idx.size:
            flat, lengths = discovered.rows_flat(currents[loop_idx])
            neighbor_degrees = view.degrees_batch(flat).astype(np.float64)
            du = np.repeat(lengths, lengths).astype(np.float64)
            per_edge = (1.0 / du) * np.minimum(1.0, du / neighbor_degrees)
            self_mass = 1.0 - _segment_sums(per_edge, lengths)
            out[loop_idx] = np.where(self_mass > 1e-15, self_mass, 0.0)
        return out
    if isinstance(design, MaxDegreeWalk):
        over = pred_degrees > design.max_degree
        if np.any(over):
            bad = int(np.flatnonzero(over)[0])
            raise ConfigurationError(
                f"node {int(predecessors[bad])} has degree "
                f"{int(pred_degrees[bad])} > declared "
                f"max_degree {design.max_degree}"
            )
        out = np.zeros(predecessors.size, dtype=np.float64)
        loops = predecessors == currents
        out[loops] = 1.0 - pred_degrees[loops] / design.max_degree
        edges = np.flatnonzero(~loops)
        if edges.size:
            if symmetric:
                out[edges] = 1.0 / design.max_degree
            else:
                member = discovered.rows_contain(
                    predecessors[edges], currents[edges]
                )
                out[edges[member]] = 1.0 / design.max_degree
        return out
    if isinstance(design, LazyWalk):
        inner = _transition_batch(
            view,
            design.inner,
            predecessors,
            currents,
            pred_degrees,
            current_degrees,
            symmetric,
        )
        out = (1.0 - design.laziness) * inner
        loops = predecessors == currents
        out[loops] = design.laziness + out[loops]
        return out
    raise ConfigurationError(
        f"design {design.name!r} has no batched transition probability; "
        "use the scalar weighted_backward_estimate"
    )


def ws_bw_batch(
    view: NeighborView,
    design: TransitionDesign,
    nodes,
    start: Node,
    t: int,
    history: Optional[ForwardHistory] = None,
    epsilon: float = 0.1,
    seed: RngLike = None,
    crawl: Optional[InitialCrawl] = None,
    stats: Optional[BackwardStats] = None,
) -> np.ndarray:
    """K simultaneous WS-BW realizations — one per entry of *nodes*.

    The batched twin of :func:`weighted_backward_estimate` for the
    *charged* regime: all K backward walks advance together, drawing from
    one shared :class:`ForwardHistory` through its sorted count arrays,
    with the ε-smoothed proposal, the inverse-CDF pick, and the importance
    weights computed for the whole batch per depth level.  Neighbor rows
    come through the view's batch interface, so a
    :class:`~repro.osn.api.SocialNetworkAPI` settles each level's charges
    in one accounting operation — and because every lookup lands in the
    API's discovered graph, the batch charges exactly the unique nodes the
    equivalent scalar walks would (§2.4: repeat lookups are free).

    **Parity.**  At ``K = 1`` this consumes the :mod:`repro.rng` stream
    *exactly* as the scalar estimator does — the same conditional draws
    (one bounded integer when the candidate history is empty, one uniform
    otherwise), the same arithmetic in the same order — so with the same
    seed it reproduces the scalar realization bit for bit, at identical
    query cost.  For ``K > 1`` the walks interleave their draws level by
    level (each walk's law is unchanged; the joint stream differs from K
    sequential scalar calls, exactly as in the forward batch engine).

    With ``history=None`` this degrades to the uniform backward walk;
    *crawl*, when given, terminates every walk the moment its remaining
    depth is covered by the exact ``p_s`` tables, via one array lookup.
    Free in-memory views (a plain :class:`~repro.graphs.Graph` or
    :class:`~repro.graphs.csr.CSRGraph`) run the same code path through a
    private row-memoizing adapter.  Type-1 (fresh-subset) restricted APIs
    are rejected: their responses change per invocation, so no cached
    batch walk can reproduce the scalar estimator's query pattern — use
    :func:`weighted_backward_estimate` there.

    Returns an array of shape ``(len(nodes),)`` of non-negative
    realizations, each with expectation ``p_t(node)``.

    .. note:: **Compatibility front end.**  External callers wanting the
       charged batched-backward regime should go through
       :func:`repro.core.estimate` with ``EngineConfig(backend="charged")``
       (the dispatcher forces ``batch_backward=True`` on the sampler,
       which routes every backward loop here); this direct signature
       remains the internal building block.
    """
    if t < 0:
        raise ValueError(f"t must be >= 0, got {t}")
    if not 0.0 < epsilon <= 1.0:
        raise ConfigurationError(f"epsilon must be in (0, 1], got {epsilon}")
    current = np.array(nodes, dtype=np.int64)
    if current.ndim != 1:
        raise ConfigurationError(
            f"nodes must be 1-d, got shape {tuple(current.shape)}"
        )
    _require_batchable(design)
    rng = ensure_rng(seed)
    if stats is not None:
        stats.walks += int(current.size)
    if getattr(view, "discovered", None) is None:
        # Free in-memory view: memoize rows locally so the one batched
        # code path below serves graphs and charged APIs alike.
        view = _CachingView(view)
    elif not view.cacheable:
        raise ConfigurationError(
            "type-1 (fresh-subset) restrictions have no batched WS-BW — "
            "each call must re-invoke the API; use the scalar "
            "weighted_backward_estimate"
        )
    discovered = view.discovered
    symmetric = view.restriction is None
    weights = np.ones(current.size, dtype=np.float64)
    results = np.zeros(current.size, dtype=np.float64)
    active = np.ones(current.size, dtype=bool)
    self_loop = 1 if design.may_self_loop else 0
    for depth in range(t, -1, -1):
        alive = np.flatnonzero(active)
        if alive.size == 0:
            break
        if crawl is not None and crawl.covers_step(depth):
            results[alive] = weights[alive] * crawl.probabilities_batch(
                current[alive], depth
            )
            break
        if depth == 0:
            home = alive[current[alive] == start]
            results[home] = weights[home]
            break
        cur = current[alive]
        # Fetching charges the whole level in one accounting operation;
        # the rows come back as one flat gather from the row pool.
        lengths = view.degrees_batch(cur)
        sizes = lengths + self_loop
        if np.any(sizes == 0):
            stuck = int(cur[sizes == 0][0])
            raise GraphError(f"backward walk stuck: node {stuck} has no neighbors")
        offsets = np.zeros(alive.size + 1, dtype=np.int64)
        np.cumsum(sizes, out=offsets[1:])
        flat_rows, _ = discovered.rows_flat(cur)
        if self_loop:
            flat = np.empty(int(offsets[-1]), dtype=np.int64)
            destination = np.arange(flat_rows.size) + np.repeat(
                np.arange(alive.size), lengths
            )
            flat[destination] = flat_rows
            flat[offsets[1:] - 1] = cur
        else:
            flat = flat_rows
        # Candidate visit counts from the shared history (one gather).
        visits = np.zeros(flat.size, dtype=np.float64)
        if history is not None and history.total_walks > 0:
            dense = history.counts_dense(depth - 1)
            if dense is not None:
                inside = (flat >= 0) & (flat < dense.size)
                visits[inside] = dense[flat[inside]]
            else:
                ids, counts = history.counts_arrays(depth - 1)
                pos, hit = sorted_lookup(ids, flat)
                visits[hit] = counts[pos[hit]]
        totals = np.add.reduceat(visits, offsets[:-1])
        uniform = totals == 0.0
        picks = np.empty(alive.size, dtype=np.int64)
        proposal = np.empty(alive.size, dtype=np.float64)
        if np.any(uniform):
            picks[uniform] = rng.integers(0, sizes[uniform])
            proposal[uniform] = 1.0 / sizes[uniform]
        weighted = np.flatnonzero(~uniform)
        if weighted.size:
            k = sizes[weighted].astype(np.float64)
            total = totals[weighted]
            c = smoothing_constants(total, k, epsilon)
            normalizer = total + c * k
            draws = rng.random(weighted.size) * normalizer
            # Per-segment inverse-CDF over visits + c.  The cumulative sums
            # run over the weighted walks' candidates only, so at K = 1 the
            # running sum is bit-identical to the scalar accumulator.
            if weighted.size == alive.size:
                sub_vpc = visits + np.repeat(c, sizes)
            else:
                sub_mask = np.repeat(~uniform, sizes)
                sub_vpc = visits[sub_mask] + np.repeat(c, sizes[weighted])
            cumulative = np.cumsum(sub_vpc)
            ends = np.cumsum(sizes[weighted])
            starts = ends - sizes[weighted]
            base = np.where(starts > 0, cumulative[starts - 1], 0.0)
            found = np.searchsorted(cumulative, base + draws, side="right")
            found = np.minimum(found, ends - 1)
            picks[weighted] = found - starts
            proposal[weighted] = sub_vpc[found] / normalizer
        predecessors = flat[offsets[:-1] + picks]
        if stats is not None:
            stats.steps += int(alive.size)
        # Fetching the predecessors charges exactly the new unique nodes
        # a scalar walk would; self entries are cache hits.
        pred_degrees = view.degrees_batch(predecessors)
        transitions = _transition_batch(
            view, design, predecessors, cur, pred_degrees, lengths, symmetric
        )
        weights[alive] *= transitions / proposal
        died = alive[weights[alive] == 0.0]
        active[died] = False
        current[alive] = predecessors
    return results

