"""ESTIMATE: orchestrated probability estimation (paper Algorithm 3).

Combines the backward walk with both variance-reduction heuristics and adds
the budget-allocation layer: each requested ``p_t(u)`` starts with a base
number of backward-walk repetitions, then extra repetitions are granted to
the estimates with the highest variance of the mean ("Use remaining budget
to reduce variance ... proportional to their variance", Algorithm 3 line 8).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro.core.config import WalkEstimateConfig
from repro.core.crawl import InitialCrawl
from repro.core.weighted import (
    BackwardStats,
    ForwardHistory,
    has_batched_transition,
    weighted_backward_estimate,
    ws_bw_batch,
)
from repro.errors import EstimationError
from repro.rng import RngLike, ensure_rng
from repro.walks.transitions import NeighborView, Node, TransitionDesign


@dataclass
class ProbabilityEstimate:
    """Running aggregate of backward-walk realizations for one node.

    Keeps O(1) running moments — estimates are queried (mean/variance) far
    more often than they are updated, and the variance-proportional refine
    loop reads every pending estimate's variance on each allocation.
    """

    node: Node
    count: int = 0
    _sum: float = 0.0
    _sum_of_squares: float = 0.0

    def add(self, value: float) -> None:
        """Record one backward-walk realization."""
        self.count += 1
        self._sum += value
        self._sum_of_squares += value * value

    @property
    def mean(self) -> float:
        """Current estimate ``p̂_t(node)`` (unbiased)."""
        if self.count == 0:
            raise EstimationError(f"no realizations for node {self.node}")
        return self._sum / self.count

    @property
    def variance_of_mean(self) -> float:
        """Estimated variance of the mean (0 with fewer than 2 realizations)."""
        n = self.count
        if n < 2:
            return 0.0
        mean = self._sum / n
        sample_variance = max(0.0, (self._sum_of_squares - n * mean * mean) / (n - 1))
        return sample_variance / n

    @property
    def relative_std_error(self) -> float:
        """Std error of the mean relative to the mean (∞ when mean is 0)."""
        m = self.mean
        if m <= 0.0:
            return float("inf")
        return float(np.sqrt(self.variance_of_mean)) / m


class ProbabilityEstimator:
    """Produces ``p̂_t(u)`` estimates for the WALK-ESTIMATE sampler.

    Parameters
    ----------
    view:
        Neighbor view (charged API in production, Graph in tests).
    design:
        Transit design of the forward walk.
    start / walk_length:
        The forward walk's start node and length ``t``.
    config:
        Governs repetitions, ε, and which heuristics are active.
    history:
        Forward-walk visit history; required only when
        ``config.weighted_sampling`` is on (pass the one the sampler
        maintains).
    crawl:
        Exact-probability table from the initial crawl, or None.
    """

    def __init__(
        self,
        view: NeighborView,
        design: TransitionDesign,
        start: Node,
        walk_length: int,
        config: WalkEstimateConfig,
        history: Optional[ForwardHistory] = None,
        crawl: Optional[InitialCrawl] = None,
        seed: RngLike = None,
    ) -> None:
        self.view = view
        self.design = design
        self.start = start
        self.walk_length = walk_length
        self.config = config
        self.history = history if config.weighted_sampling else None
        self.crawl = crawl
        self._rng = ensure_rng(seed)
        self._estimates: Dict[Node, ProbabilityEstimate] = {}
        #: Backward-walk effort accumulated across all estimates.
        self.stats = BackwardStats()

    def _one_realization(self, node: Node) -> float:
        return weighted_backward_estimate(
            self.view,
            self.design,
            node,
            self.start,
            self.walk_length,
            history=self.history,
            epsilon=self.config.epsilon,
            seed=self._rng,
            crawl=self.crawl,
            stats=self.stats,
        )

    def _use_batch_backward(self) -> bool:
        """Whether the top-up loop may route through :func:`ws_bw_batch`.

        The flag is an opt-in; designs without a batched transition law
        and type-1 (fresh-subset) restricted views stay on the scalar
        loop — both are outside the batched estimator's contract.
        """
        return (
            self.config.batch_backward
            and has_batched_transition(self.design)
            and getattr(self.view, "cacheable", True)
        )

    def _batch_realizations(self, node: Node, count: int) -> np.ndarray:
        """*count* WS-BW realizations of ``p_t(node)`` in one batched walk.

        K = *count* repetitions of the same candidate advance level by
        level together; each level's queries settle in one accounting
        operation against the view's discovered-graph cache, charging
        exactly the unique nodes the scalar loop would.  The draws
        interleave across repetitions, so the stream differs from the
        scalar loop's — the ``batch_backward`` golden fixtures pin this
        stream.
        """
        return ws_bw_batch(
            self.view,
            self.design,
            np.full(count, node, dtype=np.int64),
            self.start,
            self.walk_length,
            history=self.history,
            epsilon=self.config.epsilon,
            seed=self._rng,
            crawl=self.crawl,
            stats=self.stats,
        )

    def estimate(
        self,
        node: Node,
        repetitions: Optional[int] = None,
        refine: bool = True,
    ) -> ProbabilityEstimate:
        """Estimate ``p_t(node)``, topping up to the target repetitions.

        Nodes estimated before keep their accumulated realizations, so
        re-estimating a repeatedly-sampled node sharpens it for free.
        *repetitions* overrides the configured base count (the calibration
        phase passes a lighter budget — its estimates only seed the scale
        factor); *refine* toggles the variance-proportional extra walks.
        """
        record = self._estimates.get(node)
        if record is None:
            record = ProbabilityEstimate(node=node)
            self._estimates[node] = record
        target = (
            repetitions if repetitions is not None else self.config.backward_repetitions
        )
        needed = max(0, target - record.count)
        if needed and self._use_batch_backward():
            for value in self._batch_realizations(node, needed):
                record.add(float(value))
        else:
            for _ in range(needed):
                record.add(self._one_realization(node))
        if refine and self.config.refine_repetitions > 0:
            self.refine(self.config.refine_repetitions)
        return record

    def refine(self, budget: int) -> None:
        """Spend *budget* extra backward walks where variance is highest.

        Allocation is proportional-to-variance via sampling (Algorithm 3):
        each extra walk picks a pending node with probability proportional
        to its current variance-of-mean, so the noisiest estimates sharpen
        first while every node keeps a chance.
        """
        if budget < 0:
            raise ValueError(f"budget must be >= 0, got {budget}")
        pending = list(self._estimates.values())
        if not pending:
            return
        for _ in range(budget):
            variances = [e.variance_of_mean for e in pending]
            total = float(sum(variances))
            draw = self._rng.random()
            if total <= 0.0:
                # All estimates currently look exact; spread uniformly.
                index = int(draw * len(pending))
            else:
                # Inverse-CDF draw; cheaper than rng.choice(p=...) here.
                acc = 0.0
                index = len(pending) - 1
                for i, variance in enumerate(variances):
                    acc += variance / total
                    if draw < acc:
                        index = i
                        break
            record = pending[index]
            record.add(self._one_realization(record.node))

    def current(self, node: Node) -> Optional[ProbabilityEstimate]:
        """The accumulated estimate for *node*, if any."""
        return self._estimates.get(node)

    @property
    def estimated_nodes(self) -> tuple[Node, ...]:
        """All nodes with at least one realization."""
        return tuple(sorted(self._estimates))
