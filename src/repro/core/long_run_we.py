"""One-long-run WALK-ESTIMATE — the paper's §6.1 future-work sketch.

The paper closes §6.1 with: "we do observe the potential of applying our
WALK-ESTIMATE idea to one long run — e.g., by estimating the sampling
probability for not only the last node (taken as a candidate) but every
node on the walk path — we leave the detailed investigation to further
work."  This module is that investigation.

Design.  One continuous walk is cut into consecutive segments of ``t``
steps.  Conditioned on its entry node ``w_k``, segment ``k``'s endpoint is
distributed as ``p_t`` *from ``w_k``* — the same object WALK-ESTIMATE's
backward walk estimates — so each endpoint can be accepted/rejected against
the target exactly as in the many-short-runs sampler.  An accepted endpoint
is target-distributed **regardless of where the segment started**, so every
accepted sample has the right marginal law; what one long run cannot give
is independence *between* samples (adjacent segments share the boundary
node), which is the same caveat Eq. 25 attaches to the classical long run.

Compared to the short-runs WALK-ESTIMATE:

* no initial crawl — segment starts change every ``t`` steps, so no single
  neighborhood is worth pre-paying for (the backward recursion runs to its
  base case);
* per-segment forward history is a single trajectory, so weighted sampling
  still applies but with thin history;
* the forward walk never restarts, which matters on interfaces where
  "teleporting" back to the start is impossible or where the continuing
  walk keeps re-visiting cached territory.

Two entry points share the design: :class:`LongRunWalkEstimateSampler`
walks one continuous run over a charged :class:`SocialNetworkAPI` with
full per-query accounting, and :func:`long_run_walk_estimate_batch` runs
K continuous walks simultaneously over a compiled
:class:`~repro.graphs.csr.CSRGraph`, estimating and judging every
segment endpoint with the vectorized backward estimator — the
throughput-bound twin, for free in-memory graphs.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

from repro.core.config import WalkEstimateConfig
from repro.core.rejection import RejectionSampler, ScaleFactorBootstrap
from repro.core.unbiased import unbiased_estimate_batch
from repro.core.walk_estimate import BatchWalkEstimateResult
from repro.core.weighted import (
    BackwardStats,
    ForwardHistory,
    weighted_backward_estimate,
)
from repro.errors import ConfigurationError, QueryBudgetExceededError
from repro.graphs.csr import CSRGraph
from repro.graphs.graph import Graph
from repro.osn.api import SocialNetworkAPI
from repro.rng import RngLike, ensure_rng
from repro.walks.batch import run_walk_batch, target_weights_batch
from repro.walks.samplers import SampleBatch
from repro.walks.transitions import Node, TransitionDesign
from repro.walks.walker import run_walk


class LongRunWalkEstimateSampler:
    """WALK-ESTIMATE over one continuous walk, segment by segment."""

    def __init__(
        self,
        design: TransitionDesign,
        config: Optional[WalkEstimateConfig] = None,
        name: Optional[str] = None,
    ) -> None:
        base = config if config is not None else WalkEstimateConfig()
        # The crawl heuristic is start-anchored and does not apply here.
        self.config = base.with_overrides(crawl_hops=0)
        self.design = design
        self.name = name if name is not None else f"we-longrun-{design.name}"

    def _estimate_segment(
        self,
        api: SocialNetworkAPI,
        segment,
        stats: BackwardStats,
        rng,
    ) -> float:
        """Mean of backward realizations of ``p_t(end | start=w_k)``."""
        history = ForwardHistory(segment.start, segment.steps)
        history.record(segment)
        total = 0.0
        repetitions = self.config.backward_repetitions
        for _ in range(repetitions):
            total += weighted_backward_estimate(
                api,
                self.design,
                segment.end,
                segment.start,
                segment.steps,
                history=history if self.config.weighted_sampling else None,
                epsilon=self.config.epsilon,
                seed=rng,
                stats=stats,
            )
        return total / repetitions

    def sample(
        self,
        api: SocialNetworkAPI,
        start: Node,
        count: int,
        seed: RngLike = None,
    ) -> SampleBatch:
        """Collect *count* target-distributed (correlated) samples."""
        if count < 1:
            raise ConfigurationError(f"count must be >= 1, got {count}")
        rng = ensure_rng(seed)
        t = self.config.effective_walk_length
        batch = SampleBatch(sampler=self.name)
        stats = BackwardStats()
        bootstrap = ScaleFactorBootstrap(percentile=self.config.scale_percentile)
        rejection = RejectionSampler(bootstrap, seed=rng)
        current = start
        attempts_left = self.config.max_attempts_per_sample * count
        try:
            # Calibration: a few segments to seed the scale-factor pool.
            for _ in range(self.config.calibration_walks):
                segment = run_walk(api, self.design, current, t, seed=rng)
                current = segment.end
                batch.walk_steps += t
                estimate = self._estimate_segment(api, segment, stats, rng)
                weight = self.design.target_weight(api, segment.end)
                if estimate > 0 and weight > 0:
                    bootstrap.observe(estimate / weight)
            bootstrap.ensure_ready()
            while len(batch.nodes) < count and attempts_left > 0:
                attempts_left -= 1
                segment = run_walk(api, self.design, current, t, seed=rng)
                current = segment.end
                batch.walk_steps += t
                estimate = self._estimate_segment(api, segment, stats, rng)
                weight = self.design.target_weight(api, segment.end)
                if rejection.accept(estimate, weight):
                    batch.nodes.append(segment.end)
                    batch.target_weights.append(weight)
        except QueryBudgetExceededError:
            pass
        batch.walk_steps += stats.steps
        batch.query_cost = api.query_cost
        return batch


# ----------------------------------------------------------------------
# Vectorized batch front end (CSR backend)
# ----------------------------------------------------------------------
def long_run_walk_estimate_batch(
    graph: Union[Graph, CSRGraph],
    design: TransitionDesign,
    start,
    k_runs: int,
    segments: int,
    config: Optional[WalkEstimateConfig] = None,
    seed: RngLike = None,
) -> BatchWalkEstimateResult:
    """K continuous long-run WALK-ESTIMATE walks, judged segment by segment.

    The throughput twin of :class:`LongRunWalkEstimateSampler` for free
    in-memory graphs: *k_runs* walks advance together through one
    :func:`~repro.walks.batch.run_walk_batch` call of
    ``(calibration + segments) × t`` steps, the path matrix is cut at
    every ``t``-step boundary, and each segment endpoint's conditional
    sampling probability ``p_t(end | entry)`` is estimated by the batched
    backward estimator with **per-segment entry nodes** — the array-start
    form of :func:`~repro.core.unbiased.unbiased_estimate_batch`.  One
    vectorized acceptance–rejection pass then judges every candidate
    segment of every run at once.

    As in the scalar sampler, a calibration prefix
    (``ceil(calibration_walks / k_runs)`` segments per run) seeds the
    scale-factor pool and is never offered as candidates, and the crawl
    heuristic stays off — segment starts change every ``t`` steps, so no
    neighborhood is worth pre-paying for.  Accepted endpoints are
    target-distributed marginally; adjacent segments of the same run still
    share a boundary node, the Eq. 25 correlation caveat — diagnose with
    :func:`repro.walks.convergence.diagnose_walk_batch` when independence
    matters.

    Parameters
    ----------
    start:
        One node (every run begins there) or an array of ``k_runs`` nodes.
    k_runs:
        Number of simultaneous long runs.
    segments:
        Candidate segments per run *after* calibration; the result holds
        ``k_runs × segments`` accept/reject verdicts.

    Returns
    -------
    BatchWalkEstimateResult
        Candidate arrays flattened run-major; ``result.nodes`` /
        ``result.weights`` feed the array-native estimators directly.

    .. note:: **Compatibility front end.**  Prefer
       :func:`repro.core.estimate` with ``EngineConfig(backend="batch",
       long_run=True)``; this signature stays as a thin, parity-pinned
       shim.
    """
    if k_runs < 1:
        raise ConfigurationError(f"k_runs must be >= 1, got {k_runs}")
    if segments < 1:
        raise ConfigurationError(f"segments must be >= 1, got {segments}")
    config = config if config is not None else WalkEstimateConfig()
    rng = ensure_rng(seed)
    csr = graph.compile() if isinstance(graph, Graph) else graph
    t = config.effective_walk_length
    repetitions = config.backward_repetitions + config.refine_repetitions
    light_repetitions = config.calibration_repetitions
    calibration = -(-config.calibration_walks // k_runs)  # ceil division
    total = calibration + segments

    starts = np.asarray(start, dtype=np.int64)
    if starts.ndim == 0:
        starts = np.full(k_runs, int(starts), dtype=np.int64)
    elif starts.shape != (k_runs,):
        raise ConfigurationError(
            f"start must be one node or an array of {k_runs} nodes; got "
            f"shape {starts.shape}"
        )

    walks = run_walk_batch(
        csr, design, starts, total * t, seed=rng, backend=config.kernel_backend
    )
    entries = walks.paths[:, 0 : total * t : t]
    ends = walks.paths[:, t :: t]

    bootstrap = ScaleFactorBootstrap(percentile=config.scale_percentile)
    rejection = RejectionSampler(bootstrap, seed=rng)
    calibration_estimates = unbiased_estimate_batch(
        csr,
        design,
        ends[:, :calibration].ravel(),
        entries[:, :calibration].ravel(),
        t,
        seed=rng,
        repetitions=light_repetitions,
    )
    calibration_weights = target_weights_batch(
        csr, design, ends[:, :calibration].ravel()
    )
    bootstrap.observe_many(calibration_estimates / calibration_weights)
    bootstrap.ensure_ready()

    candidates = ends[:, calibration:].ravel()
    estimates = unbiased_estimate_batch(
        csr,
        design,
        candidates,
        entries[:, calibration:].ravel(),
        t,
        seed=rng,
        repetitions=repetitions,
    )
    weights = target_weights_batch(csr, design, candidates)
    accepted, betas = rejection.accept_batch(estimates, weights)

    backward = (
        k_runs * calibration * light_repetitions
        + k_runs * segments * repetitions
    ) * t
    return BatchWalkEstimateResult(
        candidates=candidates,
        estimates=estimates,
        target_weights=weights,
        acceptance=betas,
        accepted=accepted,
        forward_steps=k_runs * total * t,
        backward_steps=backward,
    )
