"""One-long-run WALK-ESTIMATE — the paper's §6.1 future-work sketch.

The paper closes §6.1 with: "we do observe the potential of applying our
WALK-ESTIMATE idea to one long run — e.g., by estimating the sampling
probability for not only the last node (taken as a candidate) but every
node on the walk path — we leave the detailed investigation to further
work."  This module is that investigation.

Design.  One continuous walk is cut into consecutive segments of ``t``
steps.  Conditioned on its entry node ``w_k``, segment ``k``'s endpoint is
distributed as ``p_t`` *from ``w_k``* — the same object WALK-ESTIMATE's
backward walk estimates — so each endpoint can be accepted/rejected against
the target exactly as in the many-short-runs sampler.  An accepted endpoint
is target-distributed **regardless of where the segment started**, so every
accepted sample has the right marginal law; what one long run cannot give
is independence *between* samples (adjacent segments share the boundary
node), which is the same caveat Eq. 25 attaches to the classical long run.

Compared to the short-runs WALK-ESTIMATE:

* no initial crawl — segment starts change every ``t`` steps, so no single
  neighborhood is worth pre-paying for (the backward recursion runs to its
  base case);
* per-segment forward history is a single trajectory, so weighted sampling
  still applies but with thin history;
* the forward walk never restarts, which matters on interfaces where
  "teleporting" back to the start is impossible or where the continuing
  walk keeps re-visiting cached territory.
"""

from __future__ import annotations

from typing import Optional

from repro.core.config import WalkEstimateConfig
from repro.core.rejection import RejectionSampler, ScaleFactorBootstrap
from repro.core.weighted import BackwardStats, ForwardHistory, weighted_backward_estimate
from repro.errors import ConfigurationError, QueryBudgetExceededError
from repro.osn.api import SocialNetworkAPI
from repro.rng import RngLike, ensure_rng
from repro.walks.samplers import SampleBatch
from repro.walks.transitions import Node, TransitionDesign
from repro.walks.walker import run_walk


class LongRunWalkEstimateSampler:
    """WALK-ESTIMATE over one continuous walk, segment by segment."""

    def __init__(
        self,
        design: TransitionDesign,
        config: Optional[WalkEstimateConfig] = None,
        name: Optional[str] = None,
    ) -> None:
        base = config if config is not None else WalkEstimateConfig()
        # The crawl heuristic is start-anchored and does not apply here.
        self.config = base.with_overrides(crawl_hops=0)
        self.design = design
        self.name = name if name is not None else f"we-longrun-{design.name}"

    def _estimate_segment(
        self,
        api: SocialNetworkAPI,
        segment,
        stats: BackwardStats,
        rng,
    ) -> float:
        """Mean of backward realizations of ``p_t(end | start=w_k)``."""
        history = ForwardHistory(segment.start, segment.steps)
        history.record(segment)
        total = 0.0
        repetitions = self.config.backward_repetitions
        for _ in range(repetitions):
            total += weighted_backward_estimate(
                api,
                self.design,
                segment.end,
                segment.start,
                segment.steps,
                history=history if self.config.weighted_sampling else None,
                epsilon=self.config.epsilon,
                seed=rng,
                stats=stats,
            )
        return total / repetitions

    def sample(
        self,
        api: SocialNetworkAPI,
        start: Node,
        count: int,
        seed: RngLike = None,
    ) -> SampleBatch:
        """Collect *count* target-distributed (correlated) samples."""
        if count < 1:
            raise ConfigurationError(f"count must be >= 1, got {count}")
        rng = ensure_rng(seed)
        t = self.config.effective_walk_length
        batch = SampleBatch(sampler=self.name)
        stats = BackwardStats()
        bootstrap = ScaleFactorBootstrap(percentile=self.config.scale_percentile)
        rejection = RejectionSampler(bootstrap, seed=rng)
        current = start
        attempts_left = self.config.max_attempts_per_sample * count
        try:
            # Calibration: a few segments to seed the scale-factor pool.
            for _ in range(self.config.calibration_walks):
                segment = run_walk(api, self.design, current, t, seed=rng)
                current = segment.end
                batch.walk_steps += t
                estimate = self._estimate_segment(api, segment, stats, rng)
                weight = self.design.target_weight(api, segment.end)
                if estimate > 0 and weight > 0:
                    bootstrap.observe(estimate / weight)
            if not bootstrap.ready:
                for _ in range(bootstrap.minimum_observations):
                    bootstrap.observe(1.0)
            while len(batch.nodes) < count and attempts_left > 0:
                attempts_left -= 1
                segment = run_walk(api, self.design, current, t, seed=rng)
                current = segment.end
                batch.walk_steps += t
                estimate = self._estimate_segment(api, segment, stats, rng)
                weight = self.design.target_weight(api, segment.end)
                if rejection.accept(estimate, weight):
                    batch.nodes.append(segment.end)
                    batch.target_weights.append(weight)
        except QueryBudgetExceededError:
            pass
        batch.walk_steps += stats.steps
        batch.query_cost = api.query_cost
        return batch
