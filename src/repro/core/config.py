"""Configuration for WALK-ESTIMATE with the paper's defaults (§7.1),
plus the async crawl→compact→walk pipeline's knobs."""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class WalkEstimateConfig:
    """All WALK-ESTIMATE knobs in one immutable record.

    Attributes
    ----------
    walk_length:
        Forward walk length *t*.  ``None`` derives ``2 * diameter_hint + 1``
        — the paper's conservative rule (§4.3: "we set the walk length to
        2d + 1 where d is the (estimated) graph diameter").
    diameter_hint:
        Estimated/assumed graph diameter; the paper treats 8–10 as a safe
        bet for real OSNs and uses d=7 for Google Plus.
    crawl_hops:
        Initial-crawl depth *h* (0 disables the heuristic; paper uses
        h=1 for Google Plus, h=2 elsewhere).  The crawl queries every node
        within *h* hops of the start, so its cost scales with the start's
        h-hop ball: starting at a hub of a dense graph with h=2 can cost
        thousands of queries — use h=1 there (this is exactly why the
        paper drops to h=1 on Google Plus).
    weighted_sampling:
        Enable WS-BW backward weighting (Algorithm 2).
    batch_backward:
        Route each candidate's backward-repetition loop through
        :func:`repro.core.weighted.ws_bw_batch` — all K repetitions
        advance together, with each depth level's queries settled in one
        accounting operation.  The K walks interleave their draws level
        by level, so the RNG stream differs from the scalar loop's (the
        flag has its own golden fixtures rather than scalar parity);
        what a campaign *pays* is unchanged, since every lookup lands in
        the API's discovered-graph cache exactly as the scalar walks'
        would.  Designs without a batched transition law (and type-1
        restricted views) silently fall back to the scalar loop.
    kernel_backend:
        Kernel backend executing the batch forward-walk trajectory loop
        — a name registered in :mod:`repro.walks.kernels` (``numpy``
        reference, ``native`` Numba JIT, ``python`` verification twin).
        Every backend consumes the seed stream identically, so this is
        a pure throughput knob: estimates, query accounting, and RNG
        state are bit-for-bit unchanged.  Validated here against the
        registry by *name* only; availability (e.g. ``native`` without
        numba installed) is enforced where a backend is actually
        selected for execution — :class:`repro.core.dispatch.EngineConfig`
        and the batch front ends.
    epsilon:
        WS-BW's minimum exploration mass ε (paper default 0.1).
    backward_repetitions:
        Backward-walk repetitions per probability estimate before variance
        refinement.  More repetitions buy sharper estimates (hence better
        bias control) at a real query cost on sparse graphs where backward
        walks leave the cached region — raise this for bias-critical runs
        without tight budgets (the exact-bias experiments use 24+8), keep
        it modest for budget-constrained campaigns.
    refine_repetitions:
        Extra backward walks distributed across pending estimates
        proportionally to their estimation variance (Algorithm 3's
        budget-allocation step).
    scale_percentile:
        Percentile of observed ``p̂(v)/q̃(v)`` ratios used as the
        rejection-sampling scale factor.  The paper reports the 10th
        percentile; with the modest backward-repetition counts practical on
        small surrogates the estimate noise widens the ratio pool, so the
        library defaults to 25 — the "more aggressively (i.e., higher)"
        end of the trade-off §6.3.2 describes.  Lower it for bias-critical
        work (the exact-bias experiments do).
    calibration_walks:
        Forward walks run before sampling starts, used to (a) seed the
        WS-BW history and (b) bootstrap the scale factor.
    max_attempts_per_sample:
        Safety valve on rejection loops.
    """

    walk_length: int | None = None
    diameter_hint: int = 10
    crawl_hops: int = 2
    weighted_sampling: bool = True
    batch_backward: bool = False
    kernel_backend: str = "numpy"
    epsilon: float = 0.2
    backward_repetitions: int = 12
    refine_repetitions: int = 4
    scale_percentile: float = 25.0
    calibration_walks: int = 15
    max_attempts_per_sample: int = 200

    def __post_init__(self) -> None:
        if self.walk_length is not None and self.walk_length < 1:
            raise ConfigurationError(
                f"walk_length must be >= 1 or None, got {self.walk_length}"
            )
        if self.diameter_hint < 1:
            raise ConfigurationError(
                f"diameter_hint must be >= 1, got {self.diameter_hint}"
            )
        if self.crawl_hops < 0:
            raise ConfigurationError(f"crawl_hops must be >= 0, got {self.crawl_hops}")
        from repro.walks.kernels import backend_names

        if self.kernel_backend not in backend_names():
            raise ConfigurationError(
                f"unknown kernel_backend {self.kernel_backend!r}; "
                "registered: " + ", ".join(backend_names())
            )
        if not 0.0 < self.epsilon <= 1.0:
            raise ConfigurationError(f"epsilon must be in (0, 1], got {self.epsilon}")
        if self.backward_repetitions < 1:
            raise ConfigurationError(
                f"backward_repetitions must be >= 1, got {self.backward_repetitions}"
            )
        if self.refine_repetitions < 0:
            raise ConfigurationError(
                f"refine_repetitions must be >= 0, got {self.refine_repetitions}"
            )
        if not 0.0 < self.scale_percentile < 100.0:
            raise ConfigurationError(
                f"scale_percentile must be in (0, 100), got {self.scale_percentile}"
            )
        if self.calibration_walks < 1:
            raise ConfigurationError(
                f"calibration_walks must be >= 1, got {self.calibration_walks}"
            )
        if self.max_attempts_per_sample < 1:
            raise ConfigurationError(
                "max_attempts_per_sample must be >= 1, got "
                f"{self.max_attempts_per_sample}"
            )

    @property
    def effective_walk_length(self) -> int:
        """The forward walk length actually used."""
        if self.walk_length is not None:
            return self.walk_length
        return 2 * self.diameter_hint + 1

    @property
    def calibration_repetitions(self) -> int:
        """Backward repetitions per *calibration* estimate.

        Calibration only needs the ratio pool roughly right, so every
        WALK-ESTIMATE front end prices its calibration walks at a third of
        the production budget (floored at 3) — one shared policy, not a
        per-sampler constant.
        """
        return max(3, self.backward_repetitions // 3)

    def with_overrides(self, **changes) -> "WalkEstimateConfig":
        """Copy with the given fields replaced (validation re-runs)."""
        return replace(self, **changes)


@dataclass(frozen=True)
class CrawlPipelineConfig:
    """Knobs of the async crawl→compact→walk pipeline (:mod:`repro.crawl`).

    Attributes
    ----------
    concurrency:
        Fetch batches the :class:`~repro.crawl.crawler.AsyncCrawler` keeps
        in flight.  1 reproduces the serial crawl's accounting and row
        order exactly; ≥4 is where the overlap pays on a latency-bound
        network.
    batch_size:
        Frontier nodes per fetch batch — one accounting settlement (one
        counter charge, one budget decision, one rate acquisition) each.
    rows_per_epoch:
        New neighbor rows to crawl before each compact→publish→walk
        round.  Smaller epochs refine estimates more often but pay the
        compaction and slab swap more often.
    walks_per_epoch:
        Walks launched over each published topology.
    steps_per_walk:
        Transitions per walk within an epoch's round.
    max_depth:
        Crawl radius around the start (``None`` = everything reachable);
        matches ``InitialCrawl(hops=max_depth)`` semantics.
    """

    concurrency: int = 4
    batch_size: int = 32
    rows_per_epoch: int = 128
    walks_per_epoch: int = 128
    steps_per_walk: int = 50
    max_depth: Optional[int] = None

    def __post_init__(self) -> None:
        for field_name in (
            "concurrency",
            "batch_size",
            "rows_per_epoch",
            "walks_per_epoch",
            "steps_per_walk",
        ):
            value = getattr(self, field_name)
            if value < 1:
                raise ConfigurationError(f"{field_name} must be >= 1, got {value}")
        if self.max_depth is not None and self.max_depth < 0:
            raise ConfigurationError(
                f"max_depth must be >= 0 or None, got {self.max_depth}"
            )

    def with_overrides(self, **changes) -> "CrawlPipelineConfig":
        """Copy with the given fields replaced (validation re-runs)."""
        return replace(self, **changes)
