"""IDEAL-WALK: the oracle sampler behind the paper's theory (§4.1–4.2).

IDEAL-WALK assumes two impossible luxuries: an oracle for the exact
``p_t(v)`` (here: dense matrix powers) and global topology knowledge (so
the exact rejection scale ``min_v p_t(v)/q(v)`` and the optimal walk length
are computable).  It exists to quantify the *potential* of walk-then-correct
sampling: its acceptance analysis generates Figure 2 (cost vs walk length)
and Figure 3 (savings vs graph size), and its sampling is provably zero-bias
because every quantity in the rejection step is exact.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.errors import ConfigurationError
from repro.graphs.graph import Graph, Node
from repro.markov.matrix import TransitionMatrix
from repro.rng import RngLike, ensure_rng
from repro.walks.samplers import SampleBatch
from repro.walks.transitions import TransitionDesign
from repro.walks.walker import run_walk


class IdealWalk:
    """Oracle walk-then-correct sampler over a fully known graph.

    Parameters
    ----------
    graph:
        Fully known graph with contiguous ids (``relabeled()``).
    design:
        Transit design whose target distribution to reproduce.
    start:
        Fixed starting node of every walk.
    """

    def __init__(self, graph: Graph, design: TransitionDesign, start: Node = 0) -> None:
        if not graph.has_node(start):
            raise ConfigurationError(f"start node {start} not in graph")
        self.graph = graph
        self.design = design
        self.start = start
        self.matrix = TransitionMatrix(graph, design)
        self._target = self._target_distribution()

    def _target_distribution(self) -> np.ndarray:
        weights = np.array(
            [self.design.target_weight(self.graph, v) for v in range(self.matrix.size)],
            dtype=float,
        )
        total = weights.sum()
        if total <= 0:
            raise ConfigurationError("target weights sum to zero")
        return weights / total

    # ------------------------------------------------------------------
    # Exact analysis (Figures 2–3)
    # ------------------------------------------------------------------
    def step_distribution(self, t: int) -> np.ndarray:
        """Exact ``p_t`` from the oracle."""
        return self.matrix.step_distribution(self.start, t)

    def acceptance_probability(self, t: int) -> float:
        """Expected acceptance rate of exact rejection after a *t*-step walk.

        Equals ``min_v p_t(v)/q(v)`` (summing ``p_t(v)·β(v)`` collapses to
        the min-ratio because the target q is normalized); 0 whenever some
        node is still unreachable, making the expected cost infinite —
        exactly why the walk must be at least as long as the diameter.
        """
        p_t = self.step_distribution(t)
        ratios = p_t / self._target
        return float(np.min(ratios))

    def expected_cost_per_sample(self, t: int) -> float:
        """Figure 2's y-axis: ``c(t) = t / acceptance(t)`` (∞ when 0).

        Each rejected candidate costs a fresh *t*-step walk, so the
        expected number of walks per accepted sample is 1/acceptance.
        """
        if t < 1:
            raise ConfigurationError(f"walk length must be >= 1, got {t}")
        acceptance = self.acceptance_probability(t)
        if acceptance <= 0.0:
            return float("inf")
        return t / acceptance

    def optimal_walk_length(self, max_t: int = 512) -> tuple[int, float]:
        """``(t_opt, c(t_opt))`` by scanning t = 1..max_t.

        The scan is exact (no Lambert-W approximation): Theorem 1's closed
        form is an upper-bound model, while this is the true oracle optimum
        used for the case-study figures.
        """
        best_t, best_cost = 0, float("inf")
        for t in range(1, max_t + 1):
            cost = self.expected_cost_per_sample(t)
            if cost < best_cost:
                best_t, best_cost = t, cost
        if not np.isfinite(best_cost):
            raise ConfigurationError(
                f"no finite-cost walk length up to {max_t}; graph may be "
                "periodic from this start (try a lazy design)"
            )
        return best_t, best_cost

    def input_walk_cost(self, delta: float, max_t: int = 100_000) -> int:
        """Burn-in cost of the *input* random walk to reach ℓ∞ distance ≤ δ.

        This is the traditional sampler's per-sample cost that IDEAL-WALK's
        ``c(t_opt)`` is compared against (the ``c_RW`` of Theorem 1),
        computed exactly from the oracle rather than from the spectral
        bound.
        """
        if delta <= 0:
            raise ConfigurationError(f"delta must be positive, got {delta}")
        current = np.zeros(self.matrix.size)
        current[self.start] = 1.0
        for t in range(1, max_t + 1):
            current = current @ self.matrix.matrix
            if float(np.max(np.abs(current - self._target))) <= delta:
                return t
        raise ConfigurationError(
            f"input walk did not reach l-inf distance {delta} in {max_t} steps"
        )

    def savings(self, relative_delta: float, max_t: int = 512) -> float:
        """Figure 3's y-axis: ``1 - c(t_opt) / c_RW(δ)`` (may be negative).

        *relative_delta* is the burn-in requirement expressed relative to
        the smallest target probability (δ = relative_delta · min_v q(v)),
        so the requirement is equally stringent across graph sizes —
        an absolute δ would become trivially satisfiable as ``1/n`` mass
        shrinks, making cross-size comparisons meaningless.
        """
        if relative_delta <= 0:
            raise ConfigurationError(
                f"relative_delta must be positive, got {relative_delta}"
            )
        _, ideal_cost = self.optimal_walk_length(max_t=max_t)
        delta = relative_delta * float(np.min(self._target))
        traditional = self.input_walk_cost(delta)
        return 1.0 - ideal_cost / traditional

    # ------------------------------------------------------------------
    # Zero-bias sampling
    # ------------------------------------------------------------------
    def sample(
        self,
        count: int,
        walk_length: Optional[int] = None,
        seed: RngLike = None,
    ) -> SampleBatch:
        """Draw *count* exactly-target-distributed samples.

        Uses the oracle ``p_t`` and exact min-ratio in the rejection step,
        so the output distribution equals the target with zero bias —
        the property Theorem 1 credits IDEAL-WALK with.
        """
        if count < 1:
            raise ConfigurationError(f"count must be >= 1, got {count}")
        rng = ensure_rng(seed)
        t = walk_length if walk_length is not None else self.optimal_walk_length()[0]
        p_t = self.step_distribution(t)
        min_ratio = self.acceptance_probability(t)
        if min_ratio <= 0.0:
            raise ConfigurationError(
                f"walk length {t} leaves unreachable nodes; increase it"
            )
        batch = SampleBatch(sampler=f"ideal-{self.design.name}")
        while len(batch.nodes) < count:
            walk = run_walk(self.graph, self.design, self.start, t, seed=rng)
            batch.walk_steps += t
            candidate = walk.end
            beta = min_ratio * self._target[candidate] / p_t[candidate]
            if rng.random() < beta:
                batch.nodes.append(candidate)
                batch.target_weights.append(
                    self.design.target_weight(self.graph, candidate)
                )
        return batch
