"""Initial crawling: exact sampling probabilities near the start node.

Variance-reduction heuristic #1 (paper §5.2): crawl the h-hop neighborhood
of the walk's starting node once, then compute — *exactly* — the forward
walk's step distributions ``p_s`` for every ``s ≤ h`` by dynamic programming
over the crawled zone.

Why this is exact: after ``s ≤ h`` steps the walk's support lies within
``s`` hops of the start, and the transition row of any node within ``h-1``
hops only references nodes within ``h`` hops — all of which the crawl has
queried (so their neighbor lists, hence degrees, are known).  A backward
walk can therefore stop as soon as its remaining depth ``s`` drops to ``h``
and read off the exact value ``p_s(x)`` (zero for nodes outside the
support), which is both cheaper and lower-variance than recursing to the
base case.
"""

from __future__ import annotations

from collections import deque
from typing import Dict

from repro.errors import ConfigurationError
from repro.walks.transitions import NeighborView, Node, TransitionDesign


class InitialCrawl:
    """h-hop crawl of a start node plus the exact ``p_s`` table.

    Parameters
    ----------
    api:
        Neighbor view (normally a charged :class:`SocialNetworkAPI`).
    design:
        Transit design of the forward walk whose probabilities we tabulate.
    start:
        The forward walk's starting node.
    hops:
        Crawl depth ``h`` (paper suggests 2 or 3; it uses 1 for the dense
        Google Plus graph).
    """

    def __init__(
        self,
        api: NeighborView,
        design: TransitionDesign,
        start: Node,
        hops: int,
    ) -> None:
        if hops < 0:
            raise ConfigurationError(f"hops must be >= 0, got {hops}")
        self.api = api
        self.design = design
        self.start = start
        self.hops = hops
        self._distances = self._crawl()
        self._tables = self._exact_probability_tables()

    def _crawl(self) -> Dict[Node, int]:
        """BFS to depth ``hops``; queries every node within that distance."""
        distances: Dict[Node, int] = {self.start: 0}
        queue = deque([self.start])
        while queue:
            current = queue.popleft()
            depth = distances[current]
            if depth >= self.hops:
                # Must still query the frontier node itself so its degree is
                # known to the DP; api.neighbors on it happens below only if
                # depth < hops, so do it here for frontier nodes.
                self.api.neighbors(current)
                continue
            for neighbor in self.api.neighbors(current):
                if neighbor not in distances:
                    distances[neighbor] = depth + 1
                    queue.append(neighbor)
        return distances

    def _exact_probability_tables(self) -> list[Dict[Node, float]]:
        """Forward DP: ``tables[s][v] = p_s(v)`` exactly, for ``s ≤ hops``."""
        tables: list[Dict[Node, float]] = [{self.start: 1.0}]
        for _ in range(self.hops):
            previous = tables[-1]
            current: Dict[Node, float] = {}
            for node, mass in previous.items():
                row = self.design.transition_row(self.api, node)
                for candidate, probability in row.items():
                    current[candidate] = current.get(candidate, 0.0) + mass * probability
            tables.append(current)
        return tables

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def covers_step(self, s: int) -> bool:
        """True when ``p_s`` is tabulated exactly (``0 ≤ s ≤ hops``)."""
        return 0 <= s <= self.hops

    def probability(self, node: Node, s: int) -> float:
        """Exact ``p_s(node)``; 0.0 for nodes outside the step-``s`` support.

        Raises
        ------
        ConfigurationError
            If ``s`` is not covered by the crawl (callers must check
            :meth:`covers_step` first — asking for an uncovered step is a
            logic error, not a data condition).
        """
        if not self.covers_step(s):
            raise ConfigurationError(
                f"step {s} not covered by an h={self.hops} crawl"
            )
        return self._tables[s].get(node, 0.0)

    @property
    def crawled_nodes(self) -> frozenset[Node]:
        """All nodes the crawl queried."""
        return frozenset(self._distances)

    def distance(self, node: Node) -> int | None:
        """Hop distance from the start for crawled nodes, else None."""
        return self._distances.get(node)

    def __repr__(self) -> str:
        return (
            f"InitialCrawl(start={self.start}, hops={self.hops}, "
            f"nodes={len(self._distances)})"
        )
