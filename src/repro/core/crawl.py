"""Initial crawling: exact sampling probabilities near the start node.

Variance-reduction heuristic #1 (paper §5.2): crawl the h-hop neighborhood
of the walk's starting node once, then compute — *exactly* — the forward
walk's step distributions ``p_s`` for every ``s ≤ h`` by dynamic programming
over the crawled zone.

Why this is exact: after ``s ≤ h`` steps the walk's support lies within
``s`` hops of the start, and the transition row of any node within ``h-1``
hops only references nodes within ``h`` hops — all of which the crawl has
queried (so their neighbor lists, hence degrees, are known).  A backward
walk can therefore stop as soon as its remaining depth ``s`` drops to ``h``
and read off the exact value ``p_s(x)`` (zero for nodes outside the
support), which is both cheaper and lower-variance than recursing to the
base case.

The crawl itself proceeds layer by layer, fetching each BFS frontier with
one ``neighbors_batch`` call when the view supports it — the queried node
set (and hence the §2.4 query cost) is identical to the node-at-a-time
BFS, but the accounting settles once per layer.  The resulting ``p_s``
tables serve two grains: :meth:`InitialCrawl.probability` for the scalar
backward walk, and :meth:`InitialCrawl.probabilities_batch` — one sorted
array per step, shared across K simultaneous backward walks from the same
start — for the batched WS-BW estimator.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.arrays import sorted_lookup
from repro.errors import ConfigurationError
from repro.walks.transitions import NeighborView, Node, TransitionDesign


class InitialCrawl:
    """h-hop crawl of a start node plus the exact ``p_s`` table.

    Parameters
    ----------
    api:
        Neighbor view (normally a charged :class:`SocialNetworkAPI`).
    design:
        Transit design of the forward walk whose probabilities we tabulate.
    start:
        The forward walk's starting node.
    hops:
        Crawl depth ``h`` (paper suggests 2 or 3; it uses 1 for the dense
        Google Plus graph).
    """

    def __init__(
        self,
        api: NeighborView,
        design: TransitionDesign,
        start: Node,
        hops: int,
    ) -> None:
        if hops < 0:
            raise ConfigurationError(f"hops must be >= 0, got {hops}")
        self.api = api
        self.design = design
        self.start = start
        self.hops = hops
        self._distances = self._crawl()
        self._tables = self._exact_probability_tables()
        self._array_tables: List[Optional[Tuple[np.ndarray, np.ndarray]]] = [
            None
        ] * (hops + 1)

    def _fetch_layer(self, nodes: List[Node]) -> List[Tuple[Node, ...]]:
        """Neighbor rows for one BFS layer, batched when the view allows."""
        fetch = getattr(self.api, "neighbors_batch", None)
        if fetch is not None:
            return fetch(np.asarray(nodes, dtype=np.int64))
        return [self.api.neighbors(node) for node in nodes]

    def _crawl(self) -> Dict[Node, int]:
        """Layered BFS to depth ``hops``; queries every node within it.

        Every node at distance ``≤ hops`` is queried — including the
        frontier layer itself, whose degrees the DP needs even though its
        rows are never expanded.
        """
        distances: Dict[Node, int] = {self.start: 0}
        layer: List[Node] = [self.start]
        for depth in range(self.hops + 1):
            rows = self._fetch_layer(layer)
            if depth == self.hops:
                break
            next_layer: List[Node] = []
            for row in rows:
                for neighbor in row:
                    if neighbor not in distances:
                        distances[neighbor] = depth + 1
                        next_layer.append(neighbor)
            if not next_layer:
                break
            layer = next_layer
        return distances

    def _exact_probability_tables(self) -> list[Dict[Node, float]]:
        """Forward DP: ``tables[s][v] = p_s(v)`` exactly, for ``s ≤ hops``."""
        tables: list[Dict[Node, float]] = [{self.start: 1.0}]
        for _ in range(self.hops):
            previous = tables[-1]
            current: Dict[Node, float] = {}
            for node, mass in previous.items():
                row = self.design.transition_row(self.api, node)
                for candidate, probability in row.items():
                    current[candidate] = (
                        current.get(candidate, 0.0) + mass * probability
                    )
            tables.append(current)
        return tables

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def covers_step(self, s: int) -> bool:
        """True when ``p_s`` is tabulated exactly (``0 ≤ s ≤ hops``)."""
        return 0 <= s <= self.hops

    def probability(self, node: Node, s: int) -> float:
        """Exact ``p_s(node)``; 0.0 for nodes outside the step-``s`` support.

        Raises
        ------
        ConfigurationError
            If ``s`` is not covered by the crawl (callers must check
            :meth:`covers_step` first — asking for an uncovered step is a
            logic error, not a data condition).
        """
        if not self.covers_step(s):
            raise ConfigurationError(
                f"step {s} not covered by an h={self.hops} crawl"
            )
        return self._tables[s].get(node, 0.0)

    def _table_arrays(self, s: int) -> Tuple[np.ndarray, np.ndarray]:
        """Sorted (node ids, probabilities) arrays for step *s* (cached)."""
        cached = self._array_tables[s]
        if cached is None:
            table = self._tables[s]
            ids = np.fromiter(table, dtype=np.int64, count=len(table))
            values = np.fromiter(table.values(), dtype=np.float64, count=ids.size)
            order = np.argsort(ids)
            cached = (ids[order], values[order])
            self._array_tables[s] = cached
        return cached

    def probabilities_batch(self, nodes, s: int) -> np.ndarray:
        """Exact ``p_s`` for an array of nodes — one search, K lookups.

        The array form of :meth:`probability`: one crawl (paid once per
        start) serves every backward walk of a K-wide batch in a single
        sorted-array lookup.  Nodes outside the step-``s`` support get 0.

        Raises
        ------
        ConfigurationError
            If ``s`` is not covered by the crawl.
        """
        if not self.covers_step(s):
            raise ConfigurationError(
                f"step {s} not covered by an h={self.hops} crawl"
            )
        ids, values = self._table_arrays(s)
        nodes = np.asarray(nodes, dtype=np.int64)
        out = np.zeros(nodes.size, dtype=np.float64)
        pos, hit = sorted_lookup(ids, nodes)
        out[hit] = values[pos[hit]]
        return out

    @property
    def crawled_nodes(self) -> frozenset[Node]:
        """All nodes the crawl queried."""
        return frozenset(self._distances)

    def distance(self, node: Node) -> int | None:
        """Hop distance from the start for crawled nodes, else None."""
        return self._distances.get(node)

    def __repr__(self) -> str:
        return (
            f"InitialCrawl(start={self.start}, hops={self.hops}, "
            f"nodes={len(self._distances)})"
        )
