"""Random-number-generation helpers.

All stochastic components of the library accept either an integer seed, an
existing :class:`numpy.random.Generator`, or ``None`` (fresh entropy), and
normalize it through :func:`ensure_rng`.  Experiments derive independent
child generators with :func:`spawn` so that adding a new consumer of
randomness does not perturb the streams of existing ones.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

RngLike = Union[int, np.random.Generator, None]


def ensure_rng(seed: RngLike = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for *seed*.

    ``None`` draws fresh OS entropy, an ``int`` produces a deterministic
    generator, and an existing generator is passed through unchanged.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn(rng: np.random.Generator, count: int) -> list[np.random.Generator]:
    """Derive *count* statistically independent child generators from *rng*."""
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    seeds = rng.integers(0, 2**63 - 1, size=count, dtype=np.int64)
    return [np.random.default_rng(int(s)) for s in seeds]


def choice_weighted(
    rng: np.random.Generator,
    items: list,
    weights: Optional[list[float]] = None,
):
    """Pick one element of *items*, optionally according to *weights*.

    Weights need not be normalized; they must be non-negative with a
    positive sum.  This is a thin wrapper that keeps call sites readable and
    validates inputs eagerly, which matters because transition bugs would
    otherwise surface as silent sampling bias.
    """
    if not items:
        raise ValueError("cannot choose from an empty sequence")
    if weights is None:
        index = int(rng.integers(0, len(items)))
        return items[index]
    if len(weights) != len(items):
        raise ValueError(
            f"weights length {len(weights)} does not match items length {len(items)}"
        )
    total = float(sum(weights))
    if total <= 0.0:
        raise ValueError("weights must have a positive sum")
    probabilities = np.asarray(weights, dtype=float) / total
    if np.any(probabilities < 0.0):
        raise ValueError("weights must be non-negative")
    index = int(rng.choice(len(items), p=probabilities))
    return items[index]
