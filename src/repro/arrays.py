"""Tiny shared array helpers for the batch layers.

One idiom shows up everywhere a batch component asks "which of these ids
do I know about?" — a binary search into a sorted id array followed by a
clamped equality check.  It is subtle enough (the ``np.minimum`` clamp is
what keeps the probe of past-the-end positions in bounds) that every
copy is a bug waiting to happen, so it lives here once.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np


def sorted_lookup(sorted_ids: np.ndarray, values) -> Tuple[np.ndarray, np.ndarray]:
    """Locate *values* in the sorted array *sorted_ids*.

    Returns ``(positions, found)``: ``positions[i]`` is the insertion
    point of ``values[i]`` and is only a valid index into *sorted_ids*
    where ``found[i]`` is True (i.e. the value is actually present).
    """
    values = np.asarray(values)
    positions = np.searchsorted(sorted_ids, values)
    if sorted_ids.size == 0:
        return positions, np.zeros(values.shape, dtype=bool)
    found = (positions < sorted_ids.size) & (
        sorted_ids[np.minimum(positions, sorted_ids.size - 1)] == values
    )
    return positions, found
