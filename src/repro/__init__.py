"""Reproduction of *Walk, Not Wait: Faster Sampling Over Online Social
Networks* (Nazi, Zhou, Thirumuruganathan, Zhang, Das - VLDB 2015).

The package is organized bottom-up:

* :mod:`repro.graphs` - graph substrate (structure, generators, properties);
* :mod:`repro.markov` - oracle Markov-chain machinery;
* :mod:`repro.osn` - the restricted OSN query interface with cost accounting;
* :mod:`repro.walks` - SRW/MHRW, burn-in samplers, convergence monitors;
* :mod:`repro.core` - **WALK-ESTIMATE**, the paper's contribution;
* :mod:`repro.theory` - Theorem 1 and the case studies of section 4.2;
* :mod:`repro.estimators` - aggregate estimation and bias metrics;
* :mod:`repro.datasets` - surrogates for the paper's evaluation graphs;
* :mod:`repro.experiments` - one callable per paper figure/table.

Quickstart::

    from repro import (SocialNetworkAPI, SimpleRandomWalk,
                       WalkEstimateConfig, we_full_sampler)
    from repro.datasets import google_plus_surrogate

    dataset = google_plus_surrogate(seed=7)
    api = SocialNetworkAPI(dataset.graph)
    sampler = we_full_sampler(SimpleRandomWalk(),
                              WalkEstimateConfig(diameter_hint=4, crawl_hops=1))
    batch = sampler.sample(api, start=0, count=100, seed=7)
    print(len(batch), "samples for", api.query_cost, "queries")
"""

from repro._version import __version__
from repro.errors import (
    AdmissionError,
    ConfigurationError,
    ConvergenceError,
    EstimationError,
    ExperimentError,
    GraphError,
    NodeNotFoundError,
    QueryBudgetExceededError,
    RateLimitExceededError,
    ReproError,
)
from repro.graphs import CSRGraph, Graph
from repro.osn import QueryBudget, SocialNetworkAPI
from repro.walks import (
    BurnInSampler,
    LazyWalk,
    LongRunSampler,
    MaxDegreeWalk,
    MetropolisHastingsWalk,
    SimpleRandomWalk,
    run_walk_batch,
)
from repro.core import (
    EngineConfig,
    EstimateResult,
    EstimationJobSpec,
    IdealWalk,
    WalkEstimateConfig,
    WalkEstimateSampler,
    estimate,
    walk_estimate_batch,
    we_crawl_sampler,
    we_full_sampler,
    we_none_sampler,
    we_weighted_sampler,
)

__all__ = [
    "__version__",
    "ReproError",
    "GraphError",
    "NodeNotFoundError",
    "QueryBudgetExceededError",
    "RateLimitExceededError",
    "ConfigurationError",
    "EstimationError",
    "ConvergenceError",
    "ExperimentError",
    "AdmissionError",
    "Graph",
    "CSRGraph",
    "SocialNetworkAPI",
    "QueryBudget",
    "SimpleRandomWalk",
    "MetropolisHastingsWalk",
    "LazyWalk",
    "MaxDegreeWalk",
    "BurnInSampler",
    "LongRunSampler",
    "WalkEstimateConfig",
    "WalkEstimateSampler",
    "IdealWalk",
    "we_none_sampler",
    "we_crawl_sampler",
    "we_weighted_sampler",
    "we_full_sampler",
    "run_walk_batch",
    "walk_estimate_batch",
    "estimate",
    "EstimationJobSpec",
    "EngineConfig",
    "EstimateResult",
]
