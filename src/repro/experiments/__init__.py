"""Experiment harness: one callable per paper figure/table.

Every experiment returns an :class:`~repro.experiments.runner.ExperimentResult`
containing the same series/rows the paper plots, renderable as plain text or
CSV.  The registry maps experiment ids (``figure1`` … ``figure12``,
``table1``, plus extra ablations) to callables; the CLI and the benchmark
suite both go through it.
"""

from repro.experiments.runner import (
    ExperimentResult,
    SamplerSpec,
    Series,
    TableData,
    error_vs_cost,
    error_vs_samples,
)
from repro.experiments.registry import EXPERIMENTS, get_experiment, run_experiment
from repro.experiments.reporting import render_result, result_to_csv

__all__ = [
    "ExperimentResult",
    "Series",
    "TableData",
    "SamplerSpec",
    "error_vs_cost",
    "error_vs_samples",
    "EXPERIMENTS",
    "get_experiment",
    "run_experiment",
    "render_result",
    "result_to_csv",
]
