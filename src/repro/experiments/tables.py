"""Paper tables.  Table 1 shares its workload with Figure 12."""

from __future__ import annotations

from repro.experiments.figures import figure12
from repro.experiments.runner import ExperimentResult
from repro.rng import RngLike


def table1(scale: str = "quick", seed: RngLike = 12) -> ExperimentResult:
    """Exact-bias distances (ℓ∞, KL) between target and SRW/WE distributions.

    Runs the Figure 12 workload and returns a result carrying only the
    table (the PDF/CDF panels live in ``figure12``).  Sharing the run keeps
    the two outputs consistent, exactly as in the paper.
    """
    full = figure12(scale=scale, seed=seed)
    result = ExperimentResult(
        experiment_id="table1",
        title="Distance between theoretical sampling distribution and SRW/WE",
        x_label="-",
        y_label="-",
        notes=list(full.notes),
        tables=dict(full.tables),
    )
    return result
