"""Shared experiment machinery: result records and the two core curves.

Most of the paper's evaluation figures are one of two curve families:

* **relative error vs query cost** (Figures 6–9, 11a): sweep a query
  budget, run each sampler until the budget is spent, estimate the AVG
  aggregate from whatever samples were gathered, score against ground
  truth, average over repetitions;
* **relative error vs number of samples** (Figures 10, 11b): run each
  sampler to a fixed sample count (no budget) and score prefix estimates
  at checkpoints — this isolates sample *quality* from walk cost.

:func:`error_vs_cost` and :func:`error_vs_samples` implement these once;
the figure modules parameterize them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Protocol, Sequence

import numpy as np

from repro.datasets.surrogates import SocialDataset
from repro.errors import EstimationError, ExperimentError
from repro.estimators.aggregates import average_estimate
from repro.estimators.metrics import relative_error
from repro.osn.accounting import QueryBudget
from repro.osn.api import SocialNetworkAPI
from repro.rng import RngLike, ensure_rng
from repro.walks.samplers import SampleBatch


class NodeSampler(Protocol):
    """What the harness needs from a sampler (BurnInSampler, WE, ...)."""

    def sample(
        self, api: SocialNetworkAPI, start: int, count: int, seed=None
    ) -> SampleBatch:
        """Collect up to *count* samples through *api* starting at *start*."""


@dataclass(frozen=True)
class SamplerSpec:
    """A labeled sampler factory (fresh instance per run for isolation)."""

    label: str
    factory: Callable[[], NodeSampler]


@dataclass
class Series:
    """One plotted line: (x, y) pairs under a label."""

    label: str
    x: List[float] = field(default_factory=list)
    y: List[float] = field(default_factory=list)

    def add(self, x: float, y: float) -> None:
        """Append one point."""
        self.x.append(float(x))
        self.y.append(float(y))


@dataclass
class TableData:
    """A small table: column names plus rows."""

    columns: List[str]
    rows: List[List[object]] = field(default_factory=list)


@dataclass
class ExperimentResult:
    """Everything one experiment produced.

    ``panels`` maps a subplot label (e.g. "Average Degree (SRW)") to its
    series, mirroring the paper's multi-panel figures; ``tables`` holds
    tabular outputs (Table 1); ``notes`` records scale substitutions so a
    reader of the rendered output knows what was run.
    """

    experiment_id: str
    title: str
    x_label: str
    y_label: str
    panels: Dict[str, List[Series]] = field(default_factory=dict)
    tables: Dict[str, TableData] = field(default_factory=dict)
    notes: List[str] = field(default_factory=list)

    def panel(self, name: str) -> List[Series]:
        """Series list for a panel, creating it on first use."""
        return self.panels.setdefault(name, [])


def _attribute_values(
    dataset: SocialDataset, nodes: Sequence[int], attribute: str
) -> List[float]:
    graph = dataset.graph
    return [float(graph.get_attribute(attribute, node)) for node in nodes]


def _prefix_estimate(
    batch: SampleBatch, values: Sequence[float], count: int
) -> float:
    prefix = SampleBatch(
        nodes=list(batch.nodes[:count]),
        target_weights=list(batch.target_weights[:count]),
        sampler=batch.sampler,
    )
    return average_estimate(prefix, list(values[:count]))


def pick_starts(
    dataset: SocialDataset, repetitions: int, seed: RngLike
) -> List[int]:
    """Repetition start nodes, drawn uniformly from the hidden graph.

    All samplers in one experiment share the same start per repetition so
    comparisons are paired (the paper likewise walks all algorithms from
    common seed users).
    """
    rng = ensure_rng(seed)
    nodes = dataset.graph.nodes()
    return [int(nodes[int(rng.integers(0, len(nodes)))]) for _ in range(repetitions)]


def error_vs_cost(
    dataset: SocialDataset,
    specs: Sequence[SamplerSpec],
    attribute: str,
    budgets: Sequence[int],
    repetitions: int,
    seed: RngLike = None,
    max_samples: int = 200,
) -> List[Series]:
    """Relative error of an AVG aggregate at each query budget.

    For every (sampler, budget, repetition): fresh API with that budget,
    run until the budget is exhausted (or *max_samples* reached), estimate
    the aggregate, record relative error; the series carries the mean error
    over repetitions.  Repetitions whose budget died before the first
    sample contribute the worst-case error 1.0 (an estimate of 0 —
    "no information"), so easy settings are not silently favored.
    """
    if repetitions < 1:
        raise ExperimentError(f"repetitions must be >= 1, got {repetitions}")
    truth = dataset.aggregates.get(attribute)
    if truth is None:
        raise ExperimentError(
            f"dataset {dataset.name!r} has no ground truth for {attribute!r}"
        )
    rng = ensure_rng(seed)
    starts = pick_starts(dataset, repetitions, rng)
    result: List[Series] = []
    for spec in specs:
        series = Series(label=spec.label)
        for budget in budgets:
            errors: List[float] = []
            for rep in range(repetitions):
                api = SocialNetworkAPI(dataset.graph, budget=QueryBudget(budget))
                sampler = spec.factory()
                batch = sampler.sample(
                    api, starts[rep], count=max_samples, seed=rng
                )
                if len(batch) == 0:
                    errors.append(1.0)
                    continue
                values = _attribute_values(dataset, batch.nodes, attribute)
                estimate = average_estimate(batch, values)
                errors.append(relative_error(estimate, truth))
            series.add(budget, float(np.mean(errors)))
        result.append(series)
    return result


def error_vs_samples(
    dataset: SocialDataset,
    specs: Sequence[SamplerSpec],
    attribute: str,
    checkpoints: Sequence[int],
    repetitions: int,
    seed: RngLike = None,
) -> List[Series]:
    """Relative error at fixed sample counts (sample-quality view).

    Budget-free; each repetition collects ``max(checkpoints)`` samples and
    prefix estimates are scored at every checkpoint.  Repetitions that fell
    short of a checkpoint are skipped for it (can happen only via the
    sampler's internal attempt guard).
    """
    if not checkpoints:
        raise ExperimentError("need at least one checkpoint")
    truth = dataset.aggregates.get(attribute)
    if truth is None:
        raise ExperimentError(
            f"dataset {dataset.name!r} has no ground truth for {attribute!r}"
        )
    rng = ensure_rng(seed)
    starts = pick_starts(dataset, repetitions, rng)
    target = max(checkpoints)
    result: List[Series] = []
    for spec in specs:
        per_checkpoint: Dict[int, List[float]] = {c: [] for c in checkpoints}
        for rep in range(repetitions):
            api = SocialNetworkAPI(dataset.graph)
            sampler = spec.factory()
            batch = sampler.sample(api, starts[rep], count=target, seed=rng)
            if len(batch) == 0:
                continue
            values = _attribute_values(dataset, batch.nodes, attribute)
            for checkpoint in checkpoints:
                if len(batch) < checkpoint:
                    continue
                estimate = _prefix_estimate(batch, values, checkpoint)
                per_checkpoint[checkpoint].append(relative_error(estimate, truth))
        series = Series(label=spec.label)
        for checkpoint in checkpoints:
            observed = per_checkpoint[checkpoint]
            if observed:
                series.add(checkpoint, float(np.mean(observed)))
        result.append(series)
    return result


def collect_samples(
    dataset: SocialDataset,
    spec: SamplerSpec,
    total: int,
    per_run: int,
    seed: RngLike = None,
    start: Optional[int] = None,
) -> List[int]:
    """Gather *total* sampled node ids across repeated runs (Figure 12).

    Each run uses a fresh sampler and API from the same start node; the
    run-level independence matches the "many short runs" scheme whose
    sampling distribution the exact-bias experiment measures.
    """
    if total < 1 or per_run < 1:
        raise ExperimentError("total and per_run must be >= 1")
    rng = ensure_rng(seed)
    if start is None:
        start = pick_starts(dataset, 1, rng)[0]
    nodes: List[int] = []
    while len(nodes) < total:
        api = SocialNetworkAPI(dataset.graph)
        sampler = spec.factory()
        batch = sampler.sample(api, start, count=per_run, seed=rng)
        if len(batch) == 0:
            raise EstimationError(
                f"sampler {spec.label!r} produced no samples in a run"
            )
        nodes.extend(batch.nodes)
    return nodes[:total]
