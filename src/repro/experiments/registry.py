"""Experiment registry: id -> callable(scale, seed) -> ExperimentResult."""

from __future__ import annotations

from typing import Callable, Dict

from repro.errors import ExperimentError
from repro.experiments import extras, figures, tables
from repro.experiments.runner import ExperimentResult
from repro.rng import RngLike

ExperimentFn = Callable[..., ExperimentResult]

EXPERIMENTS: Dict[str, ExperimentFn] = {
    "figure1": figures.figure1,
    "figure2": figures.figure2,
    "figure3": figures.figure3,
    # figure4 is a schematic (short-runs vs long-run illustration), no data
    "figure5": figures.figure5,
    "figure6": figures.figure6,
    "figure7": figures.figure7,
    "figure8": figures.figure8,
    "figure9": figures.figure9,
    "figure10": figures.figure10,
    "figure11": figures.figure11,
    "figure12": figures.figure12,
    "table1": tables.table1,
    "backward_variance": extras.backward_variance,
    "restrictions": extras.restrictions,
    "long_run": extras.long_run,
    "scale_factor": extras.scale_factor,
    "crawl_baselines": extras.crawl_baselines,
    "we_long_run": extras.we_long_run,
}


def get_experiment(experiment_id: str) -> ExperimentFn:
    """Look up an experiment by id.

    Raises
    ------
    ExperimentError
        For unknown ids; the message lists the valid ones.
    """
    fn = EXPERIMENTS.get(experiment_id)
    if fn is None:
        raise ExperimentError(
            f"unknown experiment {experiment_id!r}; valid: "
            + ", ".join(sorted(EXPERIMENTS))
        )
    return fn


def run_experiment(
    experiment_id: str, scale: str = "quick", seed: RngLike = None
) -> ExperimentResult:
    """Run one experiment at the given scale."""
    fn = get_experiment(experiment_id)
    if seed is None:
        return fn(scale=scale)
    return fn(scale=scale, seed=seed)
