"""Ablation experiments beyond the paper's figures.

These probe the design choices DESIGN.md calls out:

* ``backward_variance`` — how much each variance-reduction heuristic
  actually buys at a fixed backward-walk budget (§5's motivation);
* ``restrictions`` — the §6.3.1 claim that neighbor-access restrictions
  have limited impact on the estimates;
* ``long_run`` — the §6.1 effective-sample-size argument for many short
  runs over one long run;
* ``scale_factor`` — sensitivity of WE's bias/efficiency trade-off to the
  §6.3.2 bootstrap percentile.
"""

from __future__ import annotations

import numpy as np

from repro.core.config import WalkEstimateConfig
from repro.core.crawl import InitialCrawl
from repro.core.unbiased import unbiased_estimate
from repro.core.walk_estimate import we_full_sampler
from repro.core.weighted import ForwardHistory, weighted_backward_estimate
from repro.datasets.registry import build_dataset
from repro.estimators.aggregates import average_estimate
from repro.estimators.metrics import (
    empirical_distribution,
    kl_bias,
    l_infinity_bias,
    relative_error,
)
from repro.experiments.runner import (
    ExperimentResult,
    SamplerSpec,
    TableData,
    collect_samples,
)
from repro.graphs.generators import barabasi_albert_graph
from repro.graphs.properties import mean_shortest_path_lengths
from repro.markov.matrix import TransitionMatrix
from repro.osn.api import SocialNetworkAPI
from repro.osn.restrictions import (
    FixedRandomKRestriction,
    RandomKRestriction,
    TruncatedKRestriction,
    mark_recapture_degree,
)
from repro.rng import RngLike, ensure_rng, spawn
from repro.walks.autocorr import effective_sample_size
from repro.walks.samplers import BurnInSampler, LongRunSampler
from repro.walks.transitions import BidirectionalWalk, SimpleRandomWalk
from repro.walks.walker import run_walk


def backward_variance(scale: str = "quick", seed: RngLike = 51) -> ExperimentResult:
    """Estimator spread of the §5 variants at equal backward-walk budgets.

    Workload: BA(200, 4), SRW, t = 8; each variant produces 400 one-shot
    realizations of ``p_t(u)`` for a fixed far node; the table reports the
    exact value, each variant's mean (unbiasedness check), and the standard
    deviation (the quantity the heuristics attack).
    """
    rng = ensure_rng(seed)
    graph_rng, walk_rng, est_rng = spawn(rng, 3)
    graph = barabasi_albert_graph(200, 4, seed=graph_rng).relabeled()
    design = SimpleRandomWalk()
    start, t = 0, 8
    matrix = TransitionMatrix(graph, design)
    p_t = matrix.step_distribution(start, t)
    # A mid-probability node: far enough to be interesting, reachable
    # enough that the exact value is meaningfully non-zero.
    node = int(np.argsort(p_t)[len(p_t) // 2])
    exact = float(p_t[node])

    api = SocialNetworkAPI(graph)
    crawl = InitialCrawl(api, design, start, hops=2)
    history = ForwardHistory(start, t)
    for _ in range(50):
        history.record(run_walk(graph, design, start, t, seed=walk_rng))

    realizations = 2000 if scale == "full" else 400
    variants = {
        "UNBIASED-ESTIMATE": lambda: unbiased_estimate(
            graph, design, node, start, t, seed=est_rng
        ),
        "WS-BW (weighted)": lambda: weighted_backward_estimate(
            graph, design, node, start, t, history=history, seed=est_rng
        ),
        "crawl-assisted": lambda: unbiased_estimate(
            graph, design, node, start, t, seed=est_rng, crawl=crawl
        ),
        "crawl + weighted": lambda: weighted_backward_estimate(
            graph, design, node, start, t, history=history, seed=est_rng, crawl=crawl
        ),
    }
    table = TableData(columns=["estimator", "mean", "std", "exact_p"])
    for label, draw in variants.items():
        values = np.array([draw() for _ in range(realizations)])
        table.rows.append([label, float(values.mean()), float(values.std()), exact])
    result = ExperimentResult(
        experiment_id="backward_variance",
        title="Backward-estimator variance under the §5 heuristics",
        x_label="-",
        y_label="-",
        notes=[
            f"BA(200,4), SRW, t={t}, node={node}, start={start}, "
            f"{realizations} realizations each"
        ],
    )
    result.tables["estimator spread"] = table
    return result


class _MarkRecaptureSRW(SimpleRandomWalk):
    """SRW whose importance weights use mark-recapture degree estimates.

    Under the type-1 restriction, each ``neighbors`` call is a fresh random
    k-subset, so stepping uniformly on the visible list is a uniform step
    over the *true* neighbor set — the walk's stationary law is true-degree
    proportional.  The visible degree (k) is therefore the wrong importance
    weight; the paper's fix is to estimate the true degree by repeated
    calls (mark-and-recapture), which is what this design's target weight
    does.
    """

    name = "srw-markrecapture"

    def __init__(self, rounds: int = 4) -> None:
        self.rounds = rounds

    def target_weight(self, view, node) -> float:
        return mark_recapture_degree(view, node, rounds=self.rounds)


def restrictions(scale: str = "quick", seed: RngLike = 52) -> ExperimentResult:
    """Average-degree error under the §6.3.1 neighbor-access restrictions.

    Each restriction is paired with the remediation the paper prescribes:
    type 1 (fresh random-k) keeps plain SRW movement but weights samples by
    mark-recapture degree estimates; types 2/3 (call-stable subsets) walk
    only edges passing the bidirectional check.  A "naive" row per type
    shows what happens without the remediation — the gap is the point.
    """
    rng = ensure_rng(seed)
    data_rng, run_rng = spawn(rng, 2)
    dataset = build_dataset("ba_synthetic", seed=data_rng, nodes=800, m=6)
    truth = dataset.aggregates["degree"]
    samples = 150 if scale == "full" else 40
    repetitions = 10 if scale == "full" else 3
    k = 8
    cases = {
        "unrestricted / SRW": (lambda: None, SimpleRandomWalk()),
        f"type1 random-{k} / naive SRW": (
            lambda: RandomKRestriction(k, seed=run_rng),
            SimpleRandomWalk(),
        ),
        f"type1 random-{k} / mark-recapture": (
            lambda: RandomKRestriction(k, seed=run_rng),
            _MarkRecaptureSRW(),
        ),
        f"type2 fixed-{k} / naive SRW": (
            lambda: FixedRandomKRestriction(k, seed=run_rng),
            SimpleRandomWalk(),
        ),
        f"type2 fixed-{k} / bidirectional": (
            lambda: FixedRandomKRestriction(k, seed=run_rng),
            BidirectionalWalk(),
        ),
        f"type3 first-{k} / naive SRW": (
            lambda: TruncatedKRestriction(k),
            SimpleRandomWalk(),
        ),
        f"type3 first-{k} / bidirectional": (
            lambda: TruncatedKRestriction(k),
            BidirectionalWalk(),
        ),
    }
    table = TableData(
        columns=["restriction / walk", "mean_rel_error", "mean_query_cost"]
    )
    starts = [int(ensure_rng(run_rng).integers(0, 800)) for _ in range(repetitions)]
    for label, (make_restriction, design) in cases.items():
        errors, costs = [], []
        for rep in range(repetitions):
            api = SocialNetworkAPI(dataset.graph, restriction=make_restriction())
            sampler = BurnInSampler(design, min_steps=30, max_steps=1500)
            batch = sampler.sample(api, starts[rep], count=samples, seed=run_rng)
            if len(batch) == 0:
                continue
            values = [
                dataset.graph.get_attribute("degree", node) for node in batch.nodes
            ]
            estimate = average_estimate(batch, values)
            errors.append(relative_error(estimate, truth))
            costs.append(api.query_cost)
        table.rows.append([label, float(np.mean(errors)), float(np.mean(costs))])
    result = ExperimentResult(
        experiment_id="restrictions",
        title="Impact of neighbor-access restrictions (§6.3.1)",
        x_label="-",
        y_label="-",
        notes=[
            f"BA(800,6); burn-in sampler; {samples} samples x "
            f"{repetitions} repetitions; restriction size k={k}; "
            "estimated aggregate: AVG true degree (profile attribute)"
        ],
    )
    result.tables["average degree estimation"] = table
    return result


def long_run(scale: str = "quick", seed: RngLike = 53) -> ExperimentResult:
    """Many short runs vs one long run (§6.1): ESS and estimate error.

    Aggregates the per-node mean shortest-path length — an attribute that
    differs by at most 1 across adjacent nodes, i.e. exactly the "strong
    correlation between the attribute values being aggregated on adjacent
    nodes" regime where the paper warns that one long run's effective
    sample size collapses (Eq. 25).
    """
    rng = ensure_rng(seed)
    data_rng, run_rng = spawn(rng, 2)
    dataset = build_dataset("ba_synthetic", seed=data_rng, nodes=1500, m=5)
    graph = dataset.graph
    paths = mean_shortest_path_lengths(graph, landmark_count=16, seed=data_rng)
    graph.set_attribute("avg_path", {n: float(v) for n, v in paths.items()})
    truth = graph.attribute_mean("avg_path")
    design = SimpleRandomWalk()
    samples = 600 if scale == "full" else 150
    start = int(ensure_rng(run_rng).integers(0, 1500))

    api_short = SocialNetworkAPI(dataset.graph)
    short = BurnInSampler(design, min_steps=30, max_steps=1500)
    short_batch = short.sample(api_short, start, count=samples, seed=run_rng)

    api_long = SocialNetworkAPI(dataset.graph)
    long_sampler = LongRunSampler(design, burn_in_steps=150, thin=1)
    long_batch = long_sampler.sample(api_long, start, count=samples, seed=run_rng)

    table = TableData(
        columns=[
            "scheme",
            "samples",
            "effective_samples",
            "rel_error(avg path length)",
            "query_cost",
        ]
    )
    for label, batch, api in (
        ("many short runs", short_batch, api_short),
        ("one long run", long_batch, api_long),
    ):
        values = [
            float(graph.get_attribute("avg_path", node)) for node in batch.nodes
        ]
        estimate = average_estimate(batch, values)
        ess = effective_sample_size(values)
        table.rows.append(
            [
                label,
                len(batch),
                float(ess),
                relative_error(estimate, truth),
                api.query_cost,
            ]
        )
    result = ExperimentResult(
        experiment_id="long_run",
        title="Many short runs vs one long run (§6.1, Eq. 25)",
        x_label="-",
        y_label="-",
        notes=[f"BA(1500,5), MHRW, {samples} samples per scheme, start={start}"],
    )
    result.tables["scheme comparison"] = table
    return result


def crawl_baselines(scale: str = "quick", seed: RngLike = 55) -> ExperimentResult:
    """BFS/DFS/snowball vs SRW vs WE: why walks beat crawls (§8's [25]).

    Crawl-order baselines confine their "sample" to the start's vicinity
    and over-represent hubs; the table shows their average-degree error
    against the random-walk samplers at an equal query budget.
    """
    from repro.osn.accounting import QueryBudget
    from repro.walks.baselines import BFSSampler, DFSSampler, SnowballSampler

    rng = ensure_rng(seed)
    data_rng, run_rng = spawn(rng, 2)
    dataset = build_dataset("ba_synthetic", seed=data_rng, nodes=3000, m=6)
    truth = dataset.aggregates["degree"]
    budget = 4000 if scale == "full" else 1500
    repetitions = 10 if scale == "full" else 3
    design = SimpleRandomWalk()
    config = WalkEstimateConfig(diameter_hint=5, crawl_hops=2)
    samplers = {
        "BFS": lambda: BFSSampler(),
        "DFS": lambda: DFSSampler(),
        "snowball(3)": lambda: SnowballSampler(fanout=3),
        "SRW burn-in": lambda: BurnInSampler(design),
        "WE": lambda: we_full_sampler(design, config),
    }
    starts = [
        int(ensure_rng(run_rng).integers(0, 3000)) for _ in range(repetitions)
    ]
    table = TableData(columns=["sampler", "mean_rel_error", "mean_samples"])
    for label, factory in samplers.items():
        errors, counts = [], []
        for rep in range(repetitions):
            api = SocialNetworkAPI(dataset.graph, budget=QueryBudget(budget))
            batch = factory().sample(api, starts[rep], count=200, seed=run_rng)
            if len(batch) == 0:
                errors.append(1.0)
                counts.append(0)
                continue
            values = [
                dataset.graph.get_attribute("degree", node)
                for node in batch.nodes
            ]
            errors.append(relative_error(average_estimate(batch, values), truth))
            counts.append(len(batch))
        table.rows.append([label, float(np.mean(errors)), float(np.mean(counts))])
    result = ExperimentResult(
        experiment_id="crawl_baselines",
        title="Crawl-order baselines vs random-walk samplers",
        x_label="-",
        y_label="-",
        notes=[
            f"BA(3000,6); budget {budget} unique queries; AVG degree; "
            f"{repetitions} repetitions"
        ],
    )
    result.tables["average degree estimation"] = table
    return result


def we_long_run(scale: str = "quick", seed: RngLike = 56) -> ExperimentResult:
    """The §6.1 future-work variant: WALK-ESTIMATE over one long run.

    Compares, at a matched sample count: the classical one-long-run sampler
    (cheap, biased toward the walk's law), short-runs WALK-ESTIMATE
    (independent, corrected), and the long-run WALK-ESTIMATE (correlated
    but corrected).  Columns report distribution bias against the
    degree-proportional target and query cost.
    """
    from repro.core.long_run_we import LongRunWalkEstimateSampler

    rng = ensure_rng(seed)
    data_rng, run_rng = spawn(rng, 2)
    dataset = build_dataset("ba_synthetic", seed=data_rng, nodes=800, m=6)
    graph = dataset.graph
    n = graph.number_of_nodes()
    degrees = np.array([graph.degree(v) for v in range(n)], dtype=float)
    target = degrees / degrees.sum()
    design = SimpleRandomWalk()
    total = 8000 if scale == "full" else 1500
    start = int(ensure_rng(run_rng).integers(0, n))
    config = WalkEstimateConfig(diameter_hint=4, crawl_hops=2)

    samplers = {
        "one long run (classical)": lambda: LongRunSampler(
            design, burn_in_steps=100
        ),
        "WE short runs": lambda: we_full_sampler(design, config),
        "WE one long run": lambda: LongRunWalkEstimateSampler(design, config),
    }
    table = TableData(
        columns=["sampler", "l_inf_bias", "kl_bias", "query_cost", "walk_steps"]
    )
    for label, factory in samplers.items():
        api = SocialNetworkAPI(graph)
        sampler = factory()
        nodes: list[int] = []
        batch = None
        while len(nodes) < total:
            batch = sampler.sample(api, start, count=min(200, total), seed=run_rng)
            nodes.extend(batch.nodes)
        pdf = empirical_distribution(nodes[:total], n)
        table.rows.append(
            [
                label,
                l_infinity_bias(pdf, target),
                kl_bias(pdf, target),
                api.query_cost,
                batch.walk_steps if batch is not None else 0,
            ]
        )
    result = ExperimentResult(
        experiment_id="we_long_run",
        title="WALK-ESTIMATE over one long run (§6.1 future work)",
        x_label="-",
        y_label="-",
        notes=[f"BA(800,6); {total} samples per scheme; start={start}"],
    )
    result.tables["long-run comparison"] = table
    return result


def scale_factor(scale: str = "quick", seed: RngLike = 54) -> ExperimentResult:
    """WE bias/efficiency vs the §6.3.2 bootstrap percentile.

    Lower percentiles are conservative (more rejections, lower bias);
    higher ones are aggressive (cheaper, more bias) — the exact trade-off
    the paper describes.  Measured as distribution distance to the
    degree-proportional target on BA(500, 5) plus cost per sample.
    """
    rng = ensure_rng(seed)
    data_rng, run_rng = spawn(rng, 2)
    dataset = build_dataset("ba_synthetic", seed=data_rng, nodes=500, m=5)
    graph = dataset.graph
    n = graph.number_of_nodes()
    degrees = np.array([graph.degree(v) for v in range(n)], dtype=float)
    target = degrees / degrees.sum()
    design = SimpleRandomWalk()
    total = 6000 if scale == "full" else 800
    start = int(ensure_rng(run_rng).integers(0, n))

    table = TableData(
        columns=["percentile", "l_inf_bias", "kl_bias", "cost_per_sample"]
    )
    for percentile in (5.0, 10.0, 30.0, 60.0):
        config = WalkEstimateConfig(
            diameter_hint=4,
            crawl_hops=2,
            scale_percentile=percentile,
            backward_repetitions=6,
            refine_repetitions=6,
            calibration_walks=10,
        )
        spec = SamplerSpec(
            f"WE@p{percentile:g}", lambda c=config: we_full_sampler(design, c)
        )
        api_probe = SocialNetworkAPI(graph)
        sampler = we_full_sampler(design, config)
        probe_start = api_probe.snapshot()
        probe = sampler.sample(api_probe, start, count=30, seed=run_rng)
        probe_cost = api_probe.counter.delta(probe_start).unique_nodes
        cost_per_sample = probe_cost / max(1, len(probe))
        nodes = collect_samples(
            dataset, spec, total, per_run=60, seed=run_rng, start=start
        )
        pdf = empirical_distribution(nodes, n)
        table.rows.append(
            [
                percentile,
                l_infinity_bias(pdf, target),
                kl_bias(pdf, target),
                float(cost_per_sample),
            ]
        )
    result = ExperimentResult(
        experiment_id="scale_factor",
        title="Scale-factor percentile sensitivity (§6.3.2)",
        x_label="-",
        y_label="-",
        notes=[f"BA(500,5), SRW target, {total} samples per setting"],
    )
    result.tables["percentile sweep"] = table
    return result
