"""Plain-text and CSV rendering of experiment results.

Benchmarks and the CLI both print through :func:`render_result`, so
``bench_output.txt`` doubles as the measured-results record referenced by
EXPERIMENTS.md.
"""

from __future__ import annotations

import csv
import io
from typing import List

from repro.experiments.runner import ExperimentResult, Series, TableData


def _format_number(value: object) -> str:
    if isinstance(value, float):
        if value != value:  # NaN
            return "nan"
        if value in (float("inf"), float("-inf")):
            return "inf" if value > 0 else "-inf"
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.001:
            return f"{value:.3e}"
        return f"{value:.4g}"
    return str(value)


def _render_series_table(series_list: List[Series], x_label: str, y_label: str) -> str:
    # Align all series on the union of x values for a compact table.
    xs = sorted({x for s in series_list for x in s.x})
    header = [x_label] + [s.label for s in series_list]
    rows = []
    for x in xs:
        row = [_format_number(x)]
        for s in series_list:
            try:
                index = s.x.index(x)
                row.append(_format_number(s.y[index]))
            except ValueError:
                row.append("-")
        rows.append(row)
    return _render_grid(header, rows) + f"\n(y = {y_label})"


def _render_grid(header: List[str], rows: List[List[str]]) -> str:
    widths = [len(h) for h in header]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    def fmt(cells):
        return "  ".join(cell.rjust(widths[i]) for i, cell in enumerate(cells))
    lines = [fmt(header), fmt(["-" * w for w in widths])]
    lines.extend(fmt(row) for row in rows)
    return "\n".join(lines)


def render_table(table: TableData) -> str:
    """Render a :class:`TableData` as an aligned text grid."""
    rows = [[_format_number(cell) for cell in row] for row in table.rows]
    return _render_grid(list(table.columns), rows)


def render_result(result: ExperimentResult) -> str:
    """Full text report of an experiment: panels, tables, notes."""
    lines = [f"== {result.experiment_id}: {result.title} =="]
    for note in result.notes:
        lines.append(f"   note: {note}")
    for panel_name, series_list in result.panels.items():
        lines.append("")
        lines.append(f"-- {panel_name} --")
        lines.append(_render_series_table(series_list, result.x_label, result.y_label))
    for table_name, table in result.tables.items():
        lines.append("")
        lines.append(f"-- {table_name} --")
        lines.append(render_table(table))
    return "\n".join(lines)


def result_to_csv(result: ExperimentResult) -> str:
    """CSV dump: one row per (panel, series, point) plus table rows."""
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(
        ["experiment", "panel", "series", result.x_label, result.y_label]
    )
    for panel_name, series_list in result.panels.items():
        for series in series_list:
            for x, y in zip(series.x, series.y):
                writer.writerow([result.experiment_id, panel_name, series.label, x, y])
    for table_name, table in result.tables.items():
        writer.writerow([])
        writer.writerow([result.experiment_id, table_name] + list(table.columns))
        for row in table.rows:
            writer.writerow([result.experiment_id, table_name] + list(row))
    return buffer.getvalue()
