"""One function per paper figure (Figure 4 is a schematic, not data).

Every function takes ``scale`` and a ``seed``; each records its actual
workload in the result's notes so rendered output is self-describing.
Three scales ladder the same code paths:

* ``"smoke"`` — unit-test sizes: every phase of the experiment runs, but
  on workloads small enough for the test suite (seconds, not minutes).
  The numbers are structurally valid yet statistically meaningless —
  never report them.
* ``"quick"`` — benchmark-friendly sizes (the default).
* ``"full"`` — paper-scale runs.
"""

from __future__ import annotations

from typing import Dict, Sequence

import numpy as np

from repro.core.config import WalkEstimateConfig
from repro.core.walk_estimate import (
    we_crawl_sampler,
    we_full_sampler,
    we_none_sampler,
    we_weighted_sampler,
)
from repro.datasets.registry import build_dataset
from repro.datasets.surrogates import SocialDataset
from repro.errors import ExperimentError
from repro.estimators.distribution import sampling_distribution_comparison
from repro.experiments.runner import (
    ExperimentResult,
    SamplerSpec,
    Series,
    TableData,
    collect_samples,
    error_vs_cost,
    error_vs_samples,
)
from repro.graphs.generators import barabasi_albert_graph, cycle_graph
from repro.graphs.properties import estimate_diameter
from repro.markov.distributions import step_distributions
from repro.markov.matrix import TransitionMatrix
from repro.rng import RngLike, ensure_rng, spawn
from repro.theory.case_studies import CASE_STUDY_MODELS, cost_curve, savings_curve
from repro.walks.samplers import BurnInSampler
from repro.walks.transitions import (
    MetropolisHastingsWalk,
    SimpleRandomWalk,
    TransitionDesign,
)

_SCALES = ("smoke", "quick", "full")


def _check_scale(scale: str) -> None:
    if scale not in _SCALES:
        raise ExperimentError(f"scale must be one of {_SCALES}, got {scale!r}")


def _we_config_for(
    dataset: SocialDataset, crawl_hops: int, seed: RngLike
) -> WalkEstimateConfig:
    """Dataset-tuned WE config: walk length 2d+1 from a measured diameter.

    Backward repetitions are kept modest (5 base + 3 refinement): the
    rejection step tolerates noisy probability estimates, and every extra
    backward walk costs queries that the comparison charges to WE.
    """
    diameter = max(2, estimate_diameter(dataset.graph, probes=4, seed=seed))
    return WalkEstimateConfig(
        diameter_hint=diameter,
        crawl_hops=crawl_hops,
        backward_repetitions=12,
        refine_repetitions=4,
        scale_percentile=30.0,
        calibration_walks=10,
    )


def _baseline_spec(design: TransitionDesign, label: str) -> SamplerSpec:
    return SamplerSpec(label, lambda: BurnInSampler(design))


def _we_spec(
    design: TransitionDesign, config: WalkEstimateConfig, label: str = "WE"
) -> SamplerSpec:
    return SamplerSpec(label, lambda: we_full_sampler(design, config))


# ----------------------------------------------------------------------
# Figure 1 — min/max sampling probability vs walk length
# ----------------------------------------------------------------------
def figure1(scale: str = "quick", seed: RngLike = 31) -> ExperimentResult:
    """Exact min/max of ``p_t`` on BA(31, 3) as the walk lengthens.

    Shows the sharp early drop of the maximum (and rise of the minimum)
    that motivates cutting the walk short: convergence progress per step
    collapses once ``t`` passes the diameter.
    """
    _check_scale(scale)
    max_t = 80
    graph = barabasi_albert_graph(31, 3, seed=seed).relabeled()
    matrix = TransitionMatrix(graph, SimpleRandomWalk())
    minimum = Series(label="Min Prob")
    maximum = Series(label="Max Prob")
    for t, p_t in step_distributions(matrix, start=0, max_t=max_t):
        minimum.add(t, float(p_t.min()))
        maximum.add(t, float(p_t.max()))
    result = ExperimentResult(
        experiment_id="figure1",
        title="Minimum and maximum sampling probabilities vs walk length",
        x_label="walk_length",
        y_label="probability",
        notes=[f"BA graph n=31 m=3 seed={seed}, SRW, exact matrix powers"],
    )
    result.panel("BA(31,3)").extend([maximum, minimum])
    return result


# ----------------------------------------------------------------------
# Figure 2 — IDEAL-WALK query cost per sample vs walk length
# ----------------------------------------------------------------------
def figure2(scale: str = "quick", seed: RngLike = 31) -> ExperimentResult:
    """Oracle cost-per-sample curves over the five §4.2 graph models."""
    _check_scale(scale)
    walk_lengths = [1, 2, 3, 4, 6, 8, 12, 16, 24, 32, 48, 64, 96, 128]
    result = ExperimentResult(
        experiment_id="figure2",
        title="IDEAL-WALK query cost per sample vs walk length (n≈31)",
        x_label="walk_length",
        y_label="query_cost_per_sample",
        notes=["uniform target; lazy(0.05) SRW input; exact acceptance analysis"],
    )
    series_list = result.panel("five models, n≈31")
    for model in sorted(CASE_STUDY_MODELS):
        curve = cost_curve(model, n=31, walk_lengths=walk_lengths)
        series = Series(label=model)
        for t in walk_lengths:
            series.add(t, curve[t])
        series_list.append(series)
    return result


# ----------------------------------------------------------------------
# Figure 3 — IDEAL-WALK query-cost saving vs graph size
# ----------------------------------------------------------------------
def figure3(scale: str = "quick", seed: RngLike = 31) -> ExperimentResult:
    """Oracle saving ``1 - c(t_opt)/c_RW`` (in %) as graphs grow 8→128."""
    _check_scale(scale)
    sizes = [8, 16, 32, 64, 128] if scale == "full" else [8, 16, 32, 64]
    relative_delta = 0.1
    result = ExperimentResult(
        experiment_id="figure3",
        title="Query-cost saving of IDEAL-WALK vs graph size",
        x_label="graph_size",
        y_label="saving_percent",
        notes=[
            "burn-in requirement: l-inf error <= "
            f"{relative_delta} x (min target probability); lazy(0.05) SRW input"
        ],
    )
    series_list = result.panel("five models")
    for model in sorted(CASE_STUDY_MODELS):
        curve = savings_curve(model, sizes=sizes, relative_delta=relative_delta)
        series = Series(label=model)
        for n, saving in curve.items():
            series.add(n, 100.0 * saving)
        series_list.append(series)
    return result


# ----------------------------------------------------------------------
# Figure 5 — WE's limitation: long-diameter cycle graphs
# ----------------------------------------------------------------------
def figure5(scale: str = "quick", seed: RngLike = 5) -> ExperimentResult:
    """Steps per sample on cycles of growing diameter: SRW vs WE.

    Reproduces the §6.2 limitation study.  The Geweke-monitored SRW is
    barely affected by diameter (on a constant-degree cycle the monitored
    attribute is flat, so the monitor fires at its floor — the very
    blind spot convergence monitors are known for), while WE's cost grows
    quickly: its forward walk scales with the diameter and its backward
    walks rarely reach the start's crawled zone.
    """
    _check_scale(scale)
    sizes = [11, 21, 31, 41, 51] if scale == "full" else [11, 21, 31, 41]
    samples = 30 if scale == "full" else 12
    rng = ensure_rng(seed)
    srw_series = Series(label="SRW")
    we_series = Series(label="WE")
    for n in sizes:
        graph = cycle_graph(n).relabeled()
        diameter = n // 2
        dataset = SocialDataset(name=f"cycle-{n}", graph=graph, aggregates={})
        from repro.osn.api import SocialNetworkAPI  # local to avoid cycle

        api = SocialNetworkAPI(graph)
        burnin = BurnInSampler(SimpleRandomWalk(), min_steps=30, max_steps=4000)
        batch = burnin.sample(api, start=0, count=samples, seed=rng)
        srw_series.add(diameter, batch.walk_steps / max(1, len(batch)))

        config = WalkEstimateConfig(
            walk_length=2 * diameter + 1,
            crawl_hops=2,
            backward_repetitions=5,
            refine_repetitions=5,
            calibration_walks=8,
        )
        api = SocialNetworkAPI(graph)
        sampler = we_full_sampler(SimpleRandomWalk(), config)
        batch = sampler.sample(api, start=0, count=samples, seed=rng)
        we_series.add(diameter, batch.walk_steps / max(1, len(batch)))
    result = ExperimentResult(
        experiment_id="figure5",
        title="Cycle graphs with long diameter: steps per sample",
        x_label="graph_diameter",
        y_label="steps_per_sample",
        notes=[f"cycle sizes {sizes}; {samples} samples per point"],
    )
    result.panel("cycle graphs").extend([srw_series, we_series])
    return result


# ----------------------------------------------------------------------
# Figures 6/7/8 — relative error vs query cost on the three surrogates
# ----------------------------------------------------------------------
def _error_cost_figure(
    experiment_id: str,
    dataset: SocialDataset,
    design_panels: Dict[str, TransitionDesign],
    aggregates: Sequence[str],
    budgets: Sequence[int],
    repetitions: int,
    crawl_hops: int,
    seed: RngLike,
    title: str,
) -> ExperimentResult:
    rng = ensure_rng(seed)
    result = ExperimentResult(
        experiment_id=experiment_id,
        title=title,
        x_label="query_cost",
        y_label="relative_error",
        notes=[
            f"surrogate {dataset.graph.name}: |V|={dataset.graph.number_of_nodes()}, "
            f"|E|={dataset.graph.number_of_edges()}",
            f"budgets={list(budgets)}, repetitions={repetitions}",
        ],
    )
    for design_label, design in design_panels.items():
        config = _we_config_for(dataset, crawl_hops, seed=rng)
        specs = [
            _baseline_spec(design, design_label),
            _we_spec(design, config, "WE"),
        ]
        for attribute in aggregates:
            panel = f"Average {attribute} ({design_label})"
            series = error_vs_cost(
                dataset,
                specs,
                attribute,
                budgets=budgets,
                repetitions=repetitions,
                seed=rng,
            )
            result.panel(panel).extend(series)
    return result


def figure6(scale: str = "quick", seed: RngLike = 6) -> ExperimentResult:
    """Google Plus surrogate: error vs cost, SRW and MHRW inputs."""
    _check_scale(scale)
    rng = ensure_rng(seed)
    data_rng, run_rng = spawn(rng, 2)
    if scale == "smoke":
        dataset = build_dataset("google_plus", seed=data_rng, nodes=400, m=8)
        budgets = [200, 400]
        repetitions = 1
    elif scale == "quick":
        dataset = build_dataset("google_plus", seed=data_rng, nodes=4000, m=12)
        budgets = [600, 1200, 2400, 3600]
        repetitions = 3
    else:
        dataset = build_dataset("google_plus", seed=data_rng, nodes=16000, m=35)
        budgets = [2000, 4000, 6000, 9000]
        repetitions = 10
    return _error_cost_figure(
        "figure6",
        dataset,
        {"SRW": SimpleRandomWalk(), "MHRW": MetropolisHastingsWalk()},
        ["degree", "description_length"],
        budgets,
        repetitions,
        crawl_hops=1,
        seed=run_rng,
        title="Google Plus surrogate: relative error vs query cost",
    )


def figure7(scale: str = "quick", seed: RngLike = 7) -> ExperimentResult:
    """Yelp surrogate: error vs cost for the four §7 aggregates (SRW)."""
    _check_scale(scale)
    rng = ensure_rng(seed)
    data_rng, run_rng = spawn(rng, 2)
    if scale == "smoke":
        dataset = build_dataset("yelp", seed=data_rng, nodes=400, m=4)
        budgets = [200, 400]
        repetitions = 1
    elif scale == "quick":
        dataset = build_dataset("yelp", seed=data_rng, nodes=4000, m=6)
        budgets = [600, 1200, 2400, 3600]
        repetitions = 3
    else:
        dataset = build_dataset("yelp", seed=data_rng, nodes=12000, m=8)
        budgets = [1500, 3000, 6000, 9000]
        repetitions = 10
    return _error_cost_figure(
        "figure7",
        dataset,
        {"SRW": SimpleRandomWalk()},
        ["degree", "stars", "avg_path", "clustering"],
        budgets,
        repetitions,
        crawl_hops=2,
        seed=run_rng,
        title="Yelp surrogate: relative error vs query cost",
    )


def figure8(scale: str = "quick", seed: RngLike = 8) -> ExperimentResult:
    """Twitter surrogate (mutual graph): error vs cost (SRW)."""
    _check_scale(scale)
    rng = ensure_rng(seed)
    data_rng, run_rng = spawn(rng, 2)
    if scale == "smoke":
        dataset = build_dataset("twitter", seed=data_rng, nodes=600, m=8)
        budgets = [200, 400]
        repetitions = 1
    elif scale == "quick":
        dataset = build_dataset("twitter", seed=data_rng, nodes=4000, m=10)
        budgets = [500, 1000, 2000, 3000]
        repetitions = 3
    else:
        dataset = build_dataset("twitter", seed=data_rng, nodes=12000, m=12)
        budgets = [1500, 3000, 6000, 9000]
        repetitions = 10
    return _error_cost_figure(
        "figure8",
        dataset,
        {"SRW": SimpleRandomWalk()},
        ["in_degree", "out_degree", "avg_path", "clustering"],
        budgets,
        repetitions,
        crawl_hops=2,
        seed=run_rng,
        title="Twitter surrogate: relative error vs query cost",
    )


# ----------------------------------------------------------------------
# Figure 9 — variance-reduction ablation (WE vs WE-None/Crawl/Weighted)
# ----------------------------------------------------------------------
def figure9(scale: str = "quick", seed: RngLike = 9) -> ExperimentResult:
    """Google Plus surrogate: the four WE variants, error vs cost."""
    _check_scale(scale)
    rng = ensure_rng(seed)
    data_rng, run_rng = spawn(rng, 2)
    if scale == "smoke":
        dataset = build_dataset("google_plus", seed=data_rng, nodes=400, m=8)
        budgets = [200, 400]
        repetitions = 1
        design_panels: Dict[str, TransitionDesign] = {"SRW": SimpleRandomWalk()}
        aggregates = ["degree"]
    elif scale == "quick":
        dataset = build_dataset("google_plus", seed=data_rng, nodes=4000, m=12)
        budgets = [600, 1200, 2400, 3600]
        repetitions = 3
        design_panels = {"SRW": SimpleRandomWalk()}
        aggregates = ["degree", "description_length"]
    else:
        dataset = build_dataset("google_plus", seed=data_rng, nodes=16000, m=35)
        budgets = [2000, 4000, 6000, 9000]
        repetitions = 10
        design_panels = {
            "SRW": SimpleRandomWalk(),
            "MHRW": MetropolisHastingsWalk(),
        }
        aggregates = ["degree", "description_length"]
    result = ExperimentResult(
        experiment_id="figure9",
        title="Variance-reduction ablation on the Google Plus surrogate",
        x_label="query_cost",
        y_label="relative_error",
        notes=[
            f"surrogate {dataset.graph.name}",
            f"budgets={budgets}, repetitions={repetitions}",
        ],
    )
    for design_label, design in design_panels.items():
        config = _we_config_for(dataset, crawl_hops=1, seed=rng)
        specs = [
            SamplerSpec("WE-None", lambda d=design: we_none_sampler(d, config)),
            SamplerSpec("WE-Crawl", lambda d=design: we_crawl_sampler(d, config)),
            SamplerSpec(
                "WE-Weighted", lambda d=design: we_weighted_sampler(d, config)
            ),
            SamplerSpec("WE", lambda d=design: we_full_sampler(d, config)),
        ]
        for attribute in aggregates:
            panel = f"Average {attribute} ({design_label})"
            series = error_vs_cost(
                dataset,
                specs,
                attribute,
                budgets=budgets,
                repetitions=repetitions,
                seed=run_rng,
            )
            result.panel(panel).extend(series)
    return result


# ----------------------------------------------------------------------
# Figure 10 — relative error vs number of samples (sample quality)
# ----------------------------------------------------------------------
def figure10(scale: str = "quick", seed: RngLike = 10) -> ExperimentResult:
    """Google Plus surrogate: error at matched sample counts."""
    _check_scale(scale)
    rng = ensure_rng(seed)
    data_rng, run_rng = spawn(rng, 2)
    if scale == "smoke":
        dataset = build_dataset("google_plus", seed=data_rng, nodes=400, m=8)
        checkpoints = [5, 10]
        repetitions = 1
    elif scale == "quick":
        dataset = build_dataset("google_plus", seed=data_rng, nodes=4000, m=12)
        checkpoints = [10, 20, 40, 80]
        repetitions = 3
    else:
        dataset = build_dataset("google_plus", seed=data_rng, nodes=16000, m=35)
        checkpoints = [10, 20, 40, 80, 120]
        repetitions = 10
    result = ExperimentResult(
        experiment_id="figure10",
        title="Google Plus surrogate: relative error vs number of samples",
        x_label="number_of_samples",
        y_label="relative_error",
        notes=[f"checkpoints={checkpoints}, repetitions={repetitions}"],
    )
    for design_label, design in (
        ("SRW", SimpleRandomWalk()),
        ("MHRW", MetropolisHastingsWalk()),
    ):
        config = _we_config_for(dataset, crawl_hops=1, seed=rng)
        specs = [
            _baseline_spec(design, design_label),
            _we_spec(design, config, "WE"),
        ]
        for attribute in ("degree", "description_length"):
            panel = f"Average {attribute} ({design_label})"
            series = error_vs_samples(
                dataset,
                specs,
                attribute,
                checkpoints=checkpoints,
                repetitions=repetitions,
                seed=run_rng,
            )
            result.panel(panel).extend(series)
    return result


# ----------------------------------------------------------------------
# Figure 11 — synthetic BA graphs of growing size
# ----------------------------------------------------------------------
def figure11(scale: str = "quick", seed: RngLike = 11) -> ExperimentResult:
    """BA graphs at three sizes: error vs cost and vs sample count (SRW)."""
    _check_scale(scale)
    rng = ensure_rng(seed)
    if scale == "smoke":
        sizes = [300, 500]
        repetitions = 1
        checkpoints = [5, 10]
    elif scale == "quick":
        sizes = [1000, 2000, 4000]
        repetitions = 3
        checkpoints = [20, 50, 100]
    else:
        sizes = [10000, 15000, 20000]
        repetitions = 10
        checkpoints = [25, 50, 100, 150, 200]
    result = ExperimentResult(
        experiment_id="figure11",
        title="Synthetic BA graphs: average-degree estimation (SRW input)",
        x_label="query_cost",
        y_label="relative_error",
        notes=[
            f"sizes={sizes}, m=5, repetitions={repetitions}",
            "panel (b) x-axis is number_of_samples",
        ],
    )
    for n in sizes:
        data_rng, run_rng, run2_rng = spawn(rng, 3)
        dataset = build_dataset("ba_synthetic", seed=data_rng, nodes=n, m=5)
        config = _we_config_for(dataset, crawl_hops=2, seed=rng)
        design = SimpleRandomWalk()
        specs = [
            _baseline_spec(design, f"SRW-{n}"),
            _we_spec(design, config, f"WE-{n}"),
        ]
        budgets = [n // 2, (3 * n) // 4, n]
        cost_series = error_vs_cost(
            dataset, specs, "degree", budgets, repetitions, seed=run_rng
        )
        result.panel("(a) relative error vs query cost").extend(cost_series)
        sample_series = error_vs_samples(
            dataset, specs, "degree", checkpoints, repetitions, seed=run2_rng
        )
        result.panel("(b) relative error vs number of samples").extend(sample_series)
    return result


# ----------------------------------------------------------------------
# Figure 12 — exact sampling-distribution comparison (with Table 1's data)
# ----------------------------------------------------------------------
def figure12(scale: str = "quick", seed: RngLike = 12) -> ExperimentResult:
    """PDF/CDF of theoretical vs SRW vs WE sampling distributions.

    Workload: BA(1000, 7) — the paper's exact 1000-node/6951-edge graph.
    The target is SRW's stationary (degree-proportional) distribution; SRW
    samples come from Geweke-monitored short runs, WE samples from
    WALK-ESTIMATE with SRW input.  Nodes are binned (degree-descending) for
    textual output; bias metrics are computed on the unbinned vectors.
    """
    _check_scale(scale)
    rng = ensure_rng(seed)
    data_rng, start_rng, srw_rng, we_rng = spawn(rng, 4)
    dataset = build_dataset("exact_bias", seed=data_rng)
    graph = dataset.graph
    n = graph.number_of_nodes()
    totals = {"smoke": 300, "quick": 3000, "full": 20000}
    total = totals[scale]
    per_run = 60

    degrees = np.array([graph.degree(v) for v in range(n)], dtype=float)
    target = degrees / degrees.sum()

    start = int(ensure_rng(start_rng).integers(0, n))
    design = SimpleRandomWalk()
    srw_spec = SamplerSpec(
        "SRW", lambda: BurnInSampler(design, min_steps=30, max_steps=2000)
    )
    config = WalkEstimateConfig(
        diameter_hint=max(2, estimate_diameter(graph, probes=4, seed=rng)),
        crawl_hops=2,
        backward_repetitions=24,
        refine_repetitions=8,
        scale_percentile=10.0,  # bias-critical: the paper's conservative pick
        calibration_walks=15,
    )
    we_spec = SamplerSpec("WE", lambda: we_full_sampler(design, config))

    samples = {
        "SRW": collect_samples(
            dataset, srw_spec, total, per_run, seed=srw_rng, start=start
        ),
        "WE": collect_samples(
            dataset, we_spec, total, per_run, seed=we_rng, start=start
        ),
    }
    comparison = sampling_distribution_comparison(graph, target, samples)

    bins = 20
    edges = np.linspace(0, n, bins + 1, dtype=int)
    result = ExperimentResult(
        experiment_id="figure12",
        title="Sampling distribution vs degree-proportional target, BA(1000,7)",
        x_label="degree_rank_bin",
        y_label="probability_mass",
        notes=[
            f"{total} samples per sampler, start node {start}",
            "nodes ordered by descending degree, binned into "
            f"{bins} equal-width rank bins",
            "KL has a multinomial noise floor of ~(n-1)/(2*samples) = "
            f"{(n - 1) / (2 * total):.3f} at this sample count; the paper's "
            "Table 1 used enough samples to visit every node ~1000 times",
        ],
    )
    pdf_panel = result.panel("PDF (binned)")
    cdf_panel = result.panel("CDF (at bin right edges)")
    for label, pdf in [("Theo", comparison.target_pdf)] + sorted(
        comparison.sampled_pdfs.items()
    ):
        pdf_series = Series(label=label)
        cdf_series = Series(label=label)
        cumulative = np.cumsum(pdf)
        for b in range(bins):
            lo, hi = edges[b], edges[b + 1]
            pdf_series.add(b, float(pdf[lo:hi].sum()))
            cdf_series.add(b, float(cumulative[hi - 1]))
        pdf_panel.append(pdf_series)
        cdf_panel.append(cdf_series)

    table = TableData(columns=["distance_measure", "Dist(Theo, SRW)", "Dist(Theo, WE)"])
    table.rows.append(
        ["l_inf", comparison.biases["SRW"]["linf"], comparison.biases["WE"]["linf"]]
    )
    table.rows.append(
        ["KL", comparison.biases["SRW"]["kl"], comparison.biases["WE"]["kl"]]
    )
    result.tables["Table 1: distance to theoretical distribution"] = table
    return result
