"""Figure 10: sample quality — error vs number of samples (Google Plus)."""

from benchmarks.support import run_and_render


def test_figure10(benchmark):
    result = run_and_render(benchmark, "figure10")
    assert len(result.panels) == 4
    for series_list in result.panels.values():
        for series in series_list:
            assert len(series.y) >= 3
            # Errors broadly shrink as samples accumulate (allow noise).
            assert min(series.y[-2:]) <= series.y[0] + 0.12
