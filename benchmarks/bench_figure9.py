"""Figure 9: WE variance-reduction ablation on the Google Plus surrogate."""

import numpy as np

from benchmarks.support import run_and_render


def test_figure9(benchmark):
    result = run_and_render(benchmark, "figure9")
    per_variant: dict[str, list[float]] = {}
    for series_list in result.panels.values():
        for series in series_list:
            # Skip the cold-start point (smallest budget): all variants pay
            # the same fixed overhead there and errors pin at 1.
            per_variant.setdefault(series.label, []).extend(series.y[1:])
    means = {label: float(np.mean(ys)) for label, ys in per_variant.items()}
    assert set(means) == {"WE-None", "WE-Crawl", "WE-Weighted", "WE"}
    # Paper shape: the full WE is the best variant on average.
    assert means["WE"] <= min(means.values()) + 0.1
