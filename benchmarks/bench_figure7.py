"""Figure 7: Yelp surrogate, error vs query cost, four aggregates (SRW)."""

import numpy as np

from benchmarks.support import run_and_render


def test_figure7(benchmark):
    result = run_and_render(benchmark, "figure7")
    assert len(result.panels) == 4  # degree / stars / avg_path / clustering
    we_at_top, baseline_at_top = [], []
    for series_list in result.panels.values():
        for series in series_list:
            (we_at_top if series.label == "WE" else baseline_at_top).append(
                series.y[-1]
            )
    assert np.mean(we_at_top) < np.mean(baseline_at_top) + 0.05
