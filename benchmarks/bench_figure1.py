"""Figure 1: min/max sampling probability vs walk length (exact)."""

from benchmarks.support import run_and_render


def test_figure1(benchmark):
    result = run_and_render(benchmark, "figure1")
    (series_list,) = result.panels.values()
    maximum = next(s for s in series_list if s.label == "Max Prob")
    minimum = next(s for s in series_list if s.label == "Min Prob")
    # Paper shape: max collapses from 1.0 fast; min climbs from 0.
    assert maximum.y[0] == 1.0
    assert maximum.y[-1] < 0.5
    assert minimum.y[0] == 0.0
    assert minimum.y[-1] > 0.0
