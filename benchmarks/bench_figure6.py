"""Figure 6: Google Plus surrogate, error vs query cost (SRW + MHRW)."""

import numpy as np

from benchmarks.support import run_and_render


def test_figure6(benchmark):
    result = run_and_render(benchmark, "figure6")
    assert len(result.panels) == 4  # {degree, description} x {SRW, MHRW}
    we_at_top, baseline_at_top = [], []
    for series_list in result.panels.values():
        for series in series_list:
            (we_at_top if series.label == "WE" else baseline_at_top).append(
                series.y[-1]
            )
    # Paper shape: past its fixed overhead, WE sits below the input walk.
    assert np.mean(we_at_top) < np.mean(baseline_at_top) + 0.05
