"""Ablation: estimator variance under the §5 heuristics."""

from benchmarks.support import run_and_render


def test_backward_variance(benchmark):
    result = run_and_render(benchmark, "backward_variance")
    (table,) = result.tables.values()
    by_name = {row[0]: row for row in table.rows}
    plain = by_name["UNBIASED-ESTIMATE"]
    crawl = by_name["crawl-assisted"]
    # Initial crawling must shrink the spread (std column).
    assert crawl[2] < plain[2]
    # Every variant's mean lands near the exact value (within 3x spread
    # of its 400-draw mean).
    for row in table.rows:
        _, mean, std, exact = row
        assert abs(mean - exact) < 4 * std / (400**0.5) + 1e-6
