"""Ablation: neighbor-access restrictions and their remediations (§6.3.1)."""

from benchmarks.support import run_and_render


def test_restrictions(benchmark):
    result = run_and_render(benchmark, "restrictions")
    (table,) = result.tables.values()
    errors = {row[0]: row[1] for row in table.rows}
    unrestricted = errors["unrestricted / SRW"]
    # Each remediation must beat its naive counterpart...
    assert (
        errors["type1 random-8 / mark-recapture"]
        < errors["type1 random-8 / naive SRW"]
    )
    assert (
        errors["type2 fixed-8 / bidirectional"]
        < errors["type2 fixed-8 / naive SRW"]
    )
    assert (
        errors["type3 first-8 / bidirectional"]
        < errors["type3 first-8 / naive SRW"]
    )
    # ...and types 1/2 with remediation land near the unrestricted error.
    assert errors["type1 random-8 / mark-recapture"] < unrestricted + 0.1
    assert errors["type2 fixed-8 / bidirectional"] < unrestricted + 0.1
