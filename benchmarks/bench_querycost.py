"""Query-cost benchmarks for the charged-API regime, scalar vs. batch.

The paper's efficiency metric is *query cost* — unique nodes touched on a
charged API (§2.4) — so this benchmark reports two things the throughput
benchmark cannot:

* **queries per sample** for the scalar WALK-ESTIMATE front ends (WE-None
  vs the crawl-aware WE-Crawl vs full WE), with the per-phase attribution
  (crawl / forward walk / backward estimation) that the counter
  snapshot/delta helpers make explicit;
* **batched WS-BW vs scalar WS-BW** on the same charged API: every node
  of the hidden graph is estimated once, so *both* engines charge exactly
  ``|V|`` unique queries — the batch buys wall-clock speed, never extra
  query cost.  The ``speedup`` field is the acceptance gate: the batched
  charged-API path must beat scalar by ≥5x at K ≥ 256 with the query
  cost unchanged.

CLI artifact mode (``python benchmarks/bench_querycost.py --out
BENCH_querycost.json``) writes one JSON record that CI uploads alongside
``BENCH_throughput.json``; ``--quick`` shrinks the workload for smoke
runs.
"""

import argparse
import time

import numpy as np

from repro.bench import write_artifact
from repro.core.config import WalkEstimateConfig
from repro.core.walk_estimate import we_crawl_sampler, we_full_sampler, we_none_sampler
from repro.core.weighted import ForwardHistory, weighted_backward_estimate, ws_bw_batch
from repro.graphs.generators import barabasi_albert_graph
from repro.osn.api import SocialNetworkAPI
from repro.rng import ensure_rng
from repro.walks.transitions import (
    LazyWalk,
    MetropolisHastingsWalk,
    SimpleRandomWalk,
)
from repro.walks.walker import run_walk


def queries_per_sample(graph, design, config, samples, seed) -> dict:
    """Query cost per collected sample for the three scalar WE variants."""
    out = {}
    for factory in (we_none_sampler, we_crawl_sampler, we_full_sampler):
        sampler = factory(design, config)
        api = SocialNetworkAPI(graph)
        before = api.snapshot()
        batch = sampler.sample(api, start=0, count=samples, seed=seed)
        cost = api.counter.delta(before).unique_nodes
        report = sampler.last_report
        out[sampler.name] = {
            "samples": len(batch),
            "query_cost": cost,
            "queries_per_sample": cost / max(1, len(batch)),
            "phase_cost": {
                "crawl": report.crawl_cost,
                "walk": report.walk_cost,
                "backward": report.backward_cost,
            },
        }
    return out


def ws_bw_comparison(graph, design, t, history_walks, seed, rounds=3) -> dict:
    """Scalar vs batched WS-BW estimating p_t for *every* node.

    Because every node is itself an estimation target, each engine fetches
    every row exactly once — the unique-node query cost is ``|V|`` on both
    sides by construction, independent of the random trajectories, which
    is what makes the wall-clock numbers directly comparable.  One warm-up
    pass per engine pays the (identical) first-fetch cost and fixes the
    query cost; timings are the best of *rounds* repeats over the warm
    cache, so the number measures the estimation machinery rather than
    scheduler noise.
    """
    history = ForwardHistory(0, t)
    history_rng = ensure_rng(seed)
    for _ in range(history_walks):
        history.record(run_walk(graph, design, 0, t, seed=history_rng))
    targets = np.asarray(graph.nodes())

    def run_scalar(api, rng):
        for node in targets.tolist():
            weighted_backward_estimate(
                api, design, int(node), 0, t, history=history, seed=rng
            )

    def run_batch(api, rng):
        ws_bw_batch(api, design, targets, 0, t, history=history, seed=rng)

    seconds = {}
    costs = {}
    for name, runner in (("scalar", run_scalar), ("batch", run_batch)):
        api = SocialNetworkAPI(graph)
        runner(api, ensure_rng(seed))  # warm-up: pays every first fetch
        costs[name] = api.query_cost
        best = float("inf")
        for round_index in range(rounds):
            rng = ensure_rng(seed + round_index)
            begin = time.perf_counter()
            runner(api, rng)
            best = min(best, time.perf_counter() - begin)
        seconds[name] = best

    return {
        "k": int(targets.size),
        "history_walks": history_walks,
        "rounds": rounds,
        "scalar_seconds": seconds["scalar"],
        "batch_seconds": seconds["batch"],
        "speedup": seconds["scalar"] / seconds["batch"],
        "scalar_query_cost": costs["scalar"],
        "batch_query_cost": costs["batch"],
        "query_cost_unchanged": costs["scalar"] == costs["batch"],
    }


def run_comparison(
    nodes: int = 5000,
    attach: int = 3,
    walk_length: int = 21,
    history_walks: int = 100,
    samples: int = 40,
    seed: int = 42,
    rounds: int = 3,
) -> dict:
    """The full BENCH_querycost record (see module docstring)."""
    graph = barabasi_albert_graph(nodes, attach, seed=seed).relabeled()
    sampler_graph = barabasi_albert_graph(min(nodes, 1000), attach, seed=seed)
    sampler_graph = sampler_graph.relabeled()
    config = WalkEstimateConfig(
        diameter_hint=4, crawl_hops=2, calibration_walks=10, backward_repetitions=6
    )
    designs = {
        "srw": SimpleRandomWalk(),
        "mhrw": MetropolisHastingsWalk(),
        "lazy-srw": LazyWalk(SimpleRandomWalk(), 0.5),
    }
    record = {
        "benchmark": "query_cost",
        "graph": {
            "model": "barabasi_albert",
            "nodes": graph.number_of_nodes(),
            "edges": graph.number_of_edges(),
            "seed": seed,
        },
        "walk_length": walk_length,
        "samplers": {},
        "ws_bw_batch": {},
    }
    for name, design in designs.items():
        record["samplers"][name] = queries_per_sample(
            sampler_graph, design, config, samples, seed
        )
        record["ws_bw_batch"][name] = ws_bw_comparison(
            graph, design, walk_length, history_walks, seed, rounds=rounds
        )
    return record


def main(argv=None) -> None:
    parser = argparse.ArgumentParser(
        description="Charged-API query cost: scalar WE variants and batched WS-BW"
    )
    parser.add_argument("--out", default="BENCH_querycost.json")
    parser.add_argument("--nodes", type=int, default=5000)
    parser.add_argument("--attach", type=int, default=3)
    parser.add_argument("--walk-length", type=int, default=21)
    parser.add_argument("--history-walks", type=int, default=100)
    parser.add_argument("--samples", type=int, default=40)
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument("--rounds", type=int, default=3)
    parser.add_argument(
        "--quick",
        action="store_true",
        help="tiny budget for CI smoke runs (overrides nodes/lengths/walks)",
    )
    args = parser.parse_args(argv)
    if args.quick:
        args.nodes, args.walk_length = 600, 11
        args.history_walks, args.samples = 40, 10
        args.rounds = 1
    record = run_comparison(
        nodes=args.nodes,
        attach=args.attach,
        walk_length=args.walk_length,
        history_walks=args.history_walks,
        samples=args.samples,
        seed=args.seed,
        rounds=args.rounds,
    )
    write_artifact(record, args.out, scale="smoke" if args.quick else "full")
    for name, variants in record["samplers"].items():
        print(f"{name}: queries per sample")
        for variant, entry in variants.items():
            print(
                f"  {variant:18s} {entry['queries_per_sample']:7.1f} "
                f"({entry['samples']} samples, cost {entry['query_cost']})"
            )
    for name, entry in record["ws_bw_batch"].items():
        print(
            f"{name}: ws-bw batch K={entry['k']} "
            f"{entry['speedup']:.1f}x over scalar, "
            f"cost {entry['batch_query_cost']} == {entry['scalar_query_cost']}"
        )
    print(f"wrote {args.out}")


if __name__ == "__main__":
    main()
