"""Async crawl pipeline vs. serial crawl-then-walk, on the simulated clock.

Two modes share this file:

* **pytest mode** (``pytest benchmarks/bench_async_crawl.py``) — asserts
  the acceptance property at a quick scale: the pipeline at
  concurrency ≥ 4 completes the same campaign (same coverage, same query
  cost) in less simulated wall-clock than the serial crawl-then-walk
  baseline.
* **CLI artifact mode** (``python benchmarks/bench_async_crawl.py --out
  BENCH_asynccrawl.json``) — one self-contained record CI uploads: the
  serial baseline plus the pipeline at a concurrency sweep, all on the
  same hidden graph and latency script.

Honesty note: the headline metric is **simulated** seconds on the
:class:`~repro.crawl.clock.FakeClock` — per-batch network latency plus
mirrored rate-limit waits, which is what dominates a real campaign
against a rate-limited OSN and what the concurrency exists to overlap.
It is deterministic per seed, so the committed artifact is reproducible
bit for bit.  Real (process) seconds are recorded alongside for
completeness; at these scales they measure Python overhead, not the
phenomenon.  Query cost is recorded per row to prove the overlap is
free: every configuration pays exactly the same number of unique-node
queries.
"""

import argparse
import time

import numpy as np

from repro.bench import write_artifact
from repro.core.config import CrawlPipelineConfig
from repro.crawl import AsyncCrawler, CrawlWalkPipeline, FakeClock, TopologyPublisher
from repro.graphs.generators import barabasi_albert_graph
from repro.osn.api import SocialNetworkAPI
from repro.walks.parallel import ShardedWalkEngine
from repro.walks.transitions import SimpleRandomWalk

LATENCY_SCRIPT = [1.0, 0.25, 0.5, 2.0, 0.75, 1.5]


def _hidden_graph(nodes: int, attach: int, seed: int):
    return barabasi_albert_graph(nodes, attach, seed=seed).relabeled()


def time_serial_baseline(
    graph, batch_size: int, walks: int, steps: int, seed: int
) -> dict:
    """Crawl everything at concurrency 1, then walk once: the baseline."""
    api = SocialNetworkAPI(graph)
    clock = FakeClock()
    began = time.perf_counter()
    crawler = AsyncCrawler(
        api,
        0,
        concurrency=1,
        batch_size=batch_size,
        clock=clock,
        latency=LATENCY_SCRIPT,
    )
    crawler.crawl()
    with TopologyPublisher(api.discovered) as publisher:
        topology = publisher.publish()
        with publisher.acquire():
            with ShardedWalkEngine.from_shared(
                topology.shared, n_workers=1, mp_context="fork"
            ) as engine:
                starts = np.zeros(walks, dtype=np.int64)
                engine.run_walk_batch(SimpleRandomWalk(), starts, steps, seed=seed)
    elapsed = time.perf_counter() - began
    return {
        "mode": "serial_crawl_then_walk",
        "concurrency": 1,
        "simulated_seconds": clock.now,
        "real_seconds": elapsed,
        "query_cost": api.query_cost,
        "raw_calls": api.raw_calls,
        "walks": walks,
    }


def time_pipeline(
    graph,
    concurrency: int,
    batch_size: int,
    rows_per_epoch: int,
    walks_per_epoch: int,
    steps: int,
    seed: int,
) -> dict:
    """The crawl→compact→walk pipeline at one concurrency setting."""
    api = SocialNetworkAPI(graph)
    clock = FakeClock()
    config = CrawlPipelineConfig(
        concurrency=concurrency,
        batch_size=batch_size,
        rows_per_epoch=rows_per_epoch,
        walks_per_epoch=walks_per_epoch,
        steps_per_walk=steps,
    )
    began = time.perf_counter()
    with CrawlWalkPipeline(
        api,
        0,
        config=config,
        n_workers=1,
        mp_context="fork",
        clock=clock,
        latency=LATENCY_SCRIPT,
        seed=seed,
    ) as pipeline:
        result = pipeline.run()
    elapsed = time.perf_counter() - began
    true_value = 2 * graph.number_of_edges() / graph.number_of_nodes()
    return {
        "mode": "crawl_walk_pipeline",
        "concurrency": concurrency,
        "simulated_seconds": result.simulated_seconds,
        "real_seconds": elapsed,
        "query_cost": result.query_cost,
        "raw_calls": result.epochs[-1].raw_calls,
        "epochs": len(result.epochs),
        "walks": sum(r.walks for r in result.epochs),
        "estimates": [round(r.estimate, 6) for r in result.epochs],
        "final_estimate": result.final_estimate,
        "true_average_degree": true_value,
        "final_relative_error": abs(result.final_estimate - true_value) / true_value,
    }


def run_comparison(
    nodes: int = 1500,
    attach: int = 4,
    batch_size: int = 16,
    rows_per_epoch: int = 250,
    walks_per_epoch: int = 128,
    steps: int = 50,
    concurrencies=(1, 2, 4, 8),
    seed: int = 42,
) -> dict:
    graph = _hidden_graph(nodes, attach, seed)
    serial = time_serial_baseline(graph, batch_size, walks_per_epoch * 4, steps, seed)
    record = {
        "benchmark": "async_crawl_pipeline",
        "graph": {
            "model": "barabasi_albert",
            "nodes": graph.number_of_nodes(),
            "edges": graph.number_of_edges(),
            "seed": seed,
        },
        "latency_script": LATENCY_SCRIPT,
        "batch_size": batch_size,
        "rows_per_epoch": rows_per_epoch,
        "serial": serial,
        "pipeline": {},
    }
    for concurrency in concurrencies:
        timing = time_pipeline(
            graph,
            concurrency,
            batch_size,
            rows_per_epoch,
            walks_per_epoch,
            steps,
            seed,
        )
        timing["speedup_vs_serial"] = (
            serial["simulated_seconds"] / timing["simulated_seconds"]
        )
        record["pipeline"][str(concurrency)] = timing
    return record


# ----------------------------------------------------------------------
# pytest mode
# ----------------------------------------------------------------------
def test_pipeline_beats_serial_baseline_at_concurrency_4():
    record = run_comparison(
        nodes=300,
        rows_per_epoch=60,
        walks_per_epoch=32,
        steps=20,
        concurrencies=(4,),
    )
    wide = record["pipeline"]["4"]
    # Same coverage, same cost, strictly less simulated wall-clock.
    assert wide["query_cost"] == record["serial"]["query_cost"]
    assert wide["epochs"] >= 3
    assert wide["simulated_seconds"] < record["serial"]["simulated_seconds"]
    assert wide["speedup_vs_serial"] > 1.5


def test_record_is_deterministic_per_seed():
    kwargs = dict(
        nodes=200,
        rows_per_epoch=50,
        walks_per_epoch=16,
        steps=10,
        concurrencies=(2,),
        seed=9,
    )
    a, b = run_comparison(**kwargs), run_comparison(**kwargs)
    a["serial"].pop("real_seconds"), b["serial"].pop("real_seconds")
    a["pipeline"]["2"].pop("real_seconds"), b["pipeline"]["2"].pop("real_seconds")
    assert a == b


# ----------------------------------------------------------------------
# CLI artifact mode
# ----------------------------------------------------------------------
def main(argv=None) -> None:
    parser = argparse.ArgumentParser(
        description="Async crawl pipeline vs. serial crawl-then-walk"
    )
    parser.add_argument("--out", default="BENCH_asynccrawl.json")
    parser.add_argument("--nodes", type=int, default=1500)
    parser.add_argument("--batch-size", type=int, default=16)
    parser.add_argument("--rows-per-epoch", type=int, default=250)
    parser.add_argument("--walks-per-epoch", type=int, default=128)
    parser.add_argument("--steps", type=int, default=50)
    parser.add_argument("--concurrency", type=int, nargs="+", default=[1, 2, 4, 8])
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument(
        "--quick",
        action="store_true",
        help="tiny budget for CI smoke runs (overrides nodes/rows/walks)",
    )
    args = parser.parse_args(argv)
    if any(c < 1 for c in args.concurrency):
        parser.error(f"--concurrency must all be >= 1, got {args.concurrency}")
    if args.quick:
        args.nodes, args.rows_per_epoch = 400, 80
        args.walks_per_epoch, args.steps = 32, 20
    record = run_comparison(
        nodes=args.nodes,
        batch_size=args.batch_size,
        rows_per_epoch=args.rows_per_epoch,
        walks_per_epoch=args.walks_per_epoch,
        steps=args.steps,
        concurrencies=tuple(args.concurrency),
        seed=args.seed,
    )
    write_artifact(record, args.out, scale="smoke" if args.quick else "full")
    serial = record["serial"]
    print(
        f"serial crawl-then-walk: {serial['simulated_seconds']:.1f} sim-s "
        f"({serial['query_cost']} queries)"
    )
    for concurrency, timing in record["pipeline"].items():
        print(
            f"  pipeline c={concurrency}: {timing['simulated_seconds']:.1f} sim-s "
            f"({timing['speedup_vs_serial']:.2f}x), {timing['epochs']} epochs, "
            f"final rel. error {timing['final_relative_error']:.3f}"
        )
    print(f"wrote {args.out}")


if __name__ == "__main__":
    main()
