"""Ablation: rejection scale-factor percentile sensitivity (§6.3.2)."""

from benchmarks.support import run_and_render


def test_scale_factor(benchmark):
    result = run_and_render(benchmark, "scale_factor")
    (table,) = result.tables.values()
    rows = {row[0]: row for row in table.rows}
    percentiles = sorted(rows)
    # Efficiency rises (cost per sample falls) as the factor gets more
    # aggressive — the §6.3.2 trade-off's efficiency half.
    costs = [rows[p][3] for p in percentiles]
    assert costs[-1] <= costs[0] + 1e-9
    # And every setting stays in the small-bias regime on this graph.
    for p in percentiles:
        assert rows[p][1] < 0.05  # l_inf
