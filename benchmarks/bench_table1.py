"""Table 1: exact-bias distances between target and SRW/WE distributions."""

from benchmarks.support import run_and_render


def test_table1(benchmark):
    result = run_and_render(benchmark, "table1")
    (table,) = result.tables.values()
    rows = {row[0]: (row[1], row[2]) for row in table.rows}
    linf_srw, linf_we = rows["l_inf"]
    kl_srw, kl_we = rows["KL"]
    # Both samplers must land in the small-bias regime; at quick-scale
    # sample counts the two sit near the multinomial noise floor, so the
    # check is on magnitude, not strict ordering (see EXPERIMENTS.md).
    assert 0 <= linf_we < 0.02 and 0 <= linf_srw < 0.02
    assert kl_we < 0.5 and kl_srw < 0.5
