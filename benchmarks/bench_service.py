"""Multi-tenant service vs. isolated crawls: the shared-cache dividend.

Two modes share this file:

* **pytest mode** (``pytest benchmarks/bench_service.py``) — asserts the
  acceptance property at a quick scale: N concurrent tenants served by
  one :class:`~repro.service.server.SamplingService` all reach the same
  per-tenant error target while spending measurably fewer total
  unique-node queries than N isolated crawl-then-walk runs, and the
  per-tenant ledger charges sum exactly to the global
  :class:`~repro.osn.accounting.QueryCounter` charge.
* **CLI artifact mode** (``python benchmarks/bench_service.py --out
  BENCH_service.json``) — one self-contained record CI uploads: the
  isolated baseline plus the shared service at a tenant-count sweep, all
  on the same hidden graph, latency script, and seed.

The mechanism is §2.4 verbatim: a row any tenant's crawl driver pays for
lands in the shared :class:`~repro.graphs.discovered.DiscoveredGraph`
and is free for everyone afterwards.  Isolated tenants each pay for
their own copy of (roughly) the same frontier; shared tenants pay for it
once and split the bill.  Everything runs on a
:class:`~repro.crawl.clock.FakeClock`, so the committed artifact is
reproducible bit for bit.
"""

import argparse
import time

from repro.bench import write_artifact
from repro.core import EngineConfig, EstimationJobSpec, WalkEstimateConfig
from repro.graphs.generators import barabasi_albert_graph
from repro.osn.api import SocialNetworkAPI
from repro.service import SamplingService, ServiceConfig

LATENCY_SCRIPT = [1.0, 0.25, 0.5, 2.0, 0.75, 1.5]

WALK = WalkEstimateConfig(
    walk_length=6,
    crawl_hops=0,
    backward_repetitions=4,
    refine_repetitions=0,
    calibration_walks=5,
)


def _hidden_graph(nodes: int, attach: int, seed: int):
    return barabasi_albert_graph(nodes, attach, seed=seed).relabeled()


def tenant_spec(
    tenant: str, error_target: float, budget: int, samples: int
) -> EstimationJobSpec:
    return EstimationJobSpec(
        design="srw",
        samples=samples,
        error_target=error_target,
        query_budget=budget,
        tenant=tenant,
        walk=WALK,
        engine=EngineConfig(backend="batch"),
    )


def _service(graph, rows_per_epoch: int, seed: int) -> SamplingService:
    return SamplingService(
        SocialNetworkAPI(graph),
        0,
        config=ServiceConfig(rows_per_epoch=rows_per_epoch, max_rounds_per_job=12),
        latency=LATENCY_SCRIPT,
        seed=seed,
    )


def _result_row(result) -> dict:
    return {
        "tenant": result.tenant,
        "state": result.state.value,
        "met_target": result.met_target,
        "reason": result.reason,
        "estimate": round(result.estimate, 6),
        "stderr": round(result.stderr, 6),
        "rounds": result.rounds,
        "samples": result.samples,
        "query_cost": result.query_cost,
    }


def run_shared(
    graph,
    n_tenants: int,
    error_target: float,
    budget: int,
    samples: int,
    rows_per_epoch: int,
    seed: int,
) -> dict:
    """All N tenants multiplexed over one service and one discovered graph."""
    specs = [
        tenant_spec(f"tenant-{i}", error_target, budget, samples)
        for i in range(n_tenants)
    ]
    began = time.perf_counter()
    with _service(graph, rows_per_epoch, seed) as service:
        results = service.run(specs)
        service.ledger.assert_balanced()
        charges = service.ledger.charges()
        record = {
            "mode": "shared_service",
            "tenants": n_tenants,
            "simulated_seconds": service.clock.now,
            "real_seconds": time.perf_counter() - began,
            "total_query_cost": service.api.query_cost,
            "ledger": charges,
            "ledger_total": sum(charges.values()),
            "epochs": service.metrics.epochs_published.value,
            "rounds": service.metrics.rounds.value,
            "all_met_target": all(r.met_target for r in results),
            "jobs": [_result_row(r) for r in results],
        }
    return record


def run_isolated(
    graph,
    n_tenants: int,
    error_target: float,
    budget: int,
    samples: int,
    rows_per_epoch: int,
    seed: int,
) -> dict:
    """Each tenant crawls its own private copy of the graph: the baseline.

    Every run is a fresh service with a fresh API (fresh cache, fresh
    counter) — exactly what N uncoordinated third parties would do.
    """
    runs = []
    began = time.perf_counter()
    for i in range(n_tenants):
        spec = tenant_spec(f"tenant-{i}", error_target, budget, samples)
        with _service(graph, rows_per_epoch, seed + i) as service:
            (result,) = service.run([spec])
            runs.append(
                {
                    **_result_row(result),
                    "simulated_seconds": service.clock.now,
                }
            )
    return {
        "mode": "isolated_runs",
        "tenants": n_tenants,
        "real_seconds": time.perf_counter() - began,
        "total_query_cost": sum(r["query_cost"] for r in runs),
        "simulated_seconds": sum(r["simulated_seconds"] for r in runs),
        "all_met_target": all(r["met_target"] for r in runs),
        "jobs": runs,
    }


def run_comparison(
    nodes: int = 1500,
    attach: int = 4,
    tenant_counts=(2, 4, 8),
    error_target: float = 1.0,
    budget: int = 800,
    samples: int = 60,
    rows_per_epoch: int = 80,
    seed: int = 42,
) -> dict:
    graph = _hidden_graph(nodes, attach, seed)
    record = {
        "benchmark": "sampling_service_multi_tenant",
        "graph": {
            "model": "barabasi_albert",
            "nodes": graph.number_of_nodes(),
            "edges": graph.number_of_edges(),
            "seed": seed,
        },
        "latency_script": LATENCY_SCRIPT,
        "error_target": error_target,
        "per_tenant_budget": budget,
        "samples_per_round": samples,
        "rows_per_epoch": rows_per_epoch,
        "sweep": {},
    }
    for n in tenant_counts:
        shared = run_shared(
            graph, n, error_target, budget, samples, rows_per_epoch, seed
        )
        isolated = run_isolated(
            graph, n, error_target, budget, samples, rows_per_epoch, seed
        )
        saved = isolated["total_query_cost"] - shared["total_query_cost"]
        record["sweep"][str(n)] = {
            "shared": shared,
            "isolated": isolated,
            "queries_saved": saved,
            "savings_ratio": saved / isolated["total_query_cost"],
        }
    return record


# ----------------------------------------------------------------------
# pytest mode
# ----------------------------------------------------------------------
def test_four_tenants_beat_four_isolated_runs():
    record = run_comparison(
        nodes=400,
        tenant_counts=(4,),
        error_target=0.8,
        budget=300,
        samples=30,
        rows_per_epoch=40,
        seed=7,
    )
    sweep = record["sweep"]["4"]
    shared, isolated = sweep["shared"], sweep["isolated"]
    # Same per-tenant accuracy bar cleared on both sides...
    assert shared["all_met_target"]
    assert isolated["all_met_target"]
    # ...for measurably fewer total unique-node queries when shared.
    assert shared["total_query_cost"] < isolated["total_query_cost"]
    assert sweep["savings_ratio"] > 0.25
    # The ledger accounts for every charged row, to the node.
    assert shared["ledger_total"] == shared["total_query_cost"]


def test_record_is_deterministic_per_seed():
    kwargs = dict(
        nodes=300,
        tenant_counts=(2,),
        error_target=0.8,
        budget=150,
        samples=30,
        rows_per_epoch=40,
        seed=9,
    )

    def scrub(record):
        record["sweep"]["2"]["shared"].pop("real_seconds")
        record["sweep"]["2"]["isolated"].pop("real_seconds")
        return record

    assert scrub(run_comparison(**kwargs)) == scrub(run_comparison(**kwargs))


# ----------------------------------------------------------------------
# CLI artifact mode
# ----------------------------------------------------------------------
def main(argv=None) -> None:
    parser = argparse.ArgumentParser(
        description="Multi-tenant sampling service vs. isolated crawls"
    )
    parser.add_argument("--out", default="BENCH_service.json")
    parser.add_argument("--nodes", type=int, default=1500)
    parser.add_argument("--tenants", type=int, nargs="+", default=[2, 4, 8])
    parser.add_argument("--error-target", type=float, default=1.0)
    parser.add_argument("--budget", type=int, default=800)
    parser.add_argument("--samples", type=int, default=60)
    parser.add_argument("--rows-per-epoch", type=int, default=80)
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument(
        "--quick",
        action="store_true",
        help="tiny budget for CI smoke runs (overrides nodes/tenants)",
    )
    args = parser.parse_args(argv)
    if any(n < 1 for n in args.tenants):
        parser.error(f"--tenants must all be >= 1, got {args.tenants}")
    if args.quick:
        args.nodes, args.tenants = 400, [4]
        args.error_target, args.budget = 0.8, 300
        args.samples, args.rows_per_epoch = 30, 40
    record = run_comparison(
        nodes=args.nodes,
        tenant_counts=tuple(args.tenants),
        error_target=args.error_target,
        budget=args.budget,
        samples=args.samples,
        rows_per_epoch=args.rows_per_epoch,
        seed=args.seed,
    )
    write_artifact(record, args.out, scale="smoke" if args.quick else "full")
    for n, sweep in record["sweep"].items():
        shared, isolated = sweep["shared"], sweep["isolated"]
        print(
            f"N={n}: shared {shared['total_query_cost']} queries vs "
            f"isolated {isolated['total_query_cost']} "
            f"({sweep['savings_ratio']:.1%} saved), "
            f"all targets met: {shared['all_met_target']}"
        )
    print(f"wrote {args.out}")


if __name__ == "__main__":
    main()
