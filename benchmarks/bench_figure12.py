"""Figure 12: sampling-distribution PDF/CDF vs the theoretical target."""

from benchmarks.support import run_and_render


def test_figure12(benchmark):
    result = run_and_render(benchmark, "figure12")
    pdf_panel = result.panels["PDF (binned)"]
    labels = {s.label for s in pdf_panel}
    assert labels == {"Theo", "SRW", "WE"}
    for series in pdf_panel:
        assert abs(sum(series.y) - 1.0) < 1e-6
    cdf_panel = result.panels["CDF (at bin right edges)"]
    for series in cdf_panel:
        assert series.y == sorted(series.y)
        assert abs(series.y[-1] - 1.0) < 1e-6
    # Table 1 rides along.
    (table,) = result.tables.values()
    assert [row[0] for row in table.rows] == ["l_inf", "KL"]
