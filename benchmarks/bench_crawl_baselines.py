"""Ablation: crawl-order baselines (BFS/DFS/snowball) vs walk samplers."""

from benchmarks.support import run_and_render


def test_crawl_baselines(benchmark):
    result = run_and_render(benchmark, "crawl_baselines")
    (table,) = result.tables.values()
    errors = {row[0]: row[1] for row in table.rows}
    # Every crawl-order baseline loses to WALK-ESTIMATE.
    for crawler in ("BFS", "DFS", "snowball(3)"):
        assert errors[crawler] > errors["WE"], crawler
