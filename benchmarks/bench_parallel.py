"""Sharded-engine throughput: scalar vs. batch vs. multiprocess fan-out.

Two modes share this file:

* **pytest-benchmark tests** (``pytest benchmarks/bench_parallel.py``) —
  statistical timing of one sharded round against the single-process
  batch engine at matched K.
* **CLI artifact mode** (``python benchmarks/bench_parallel.py --out
  BENCH_parallel.json``) — one self-contained record CI uploads: the
  scalar engine, the single-process batch engine, and the sharded engine
  at a sweep of worker counts (default 1/2/4/8), all on the same
  benchmark graph.  Each sharded row reports steps/sec and its speedup
  over the batch engine — the scaling curve the engine exists for.

Honesty note: the record carries ``host.cpu_count`` (scheduling
affinity).  Walks are embarrassingly parallel, so on an unconstrained
multi-core host the sharded rows approach ``min(workers, cores)``×; on a
core-limited CI runner the curve flattens at the core count — interpret
the committed artifact against its recorded host, not the ideal.

``--quick`` shrinks the budget for smoke runs; ``--workers`` picks the
sweep (CI smoke uses ``--workers 1 2``); ``--slab-storage file`` times the
sharded rows over an mmap-backed slab file instead of ``/dev/shm`` (the
storage rides in the envelope's host block, so cross-storage timing
comparisons downgrade to warnings like any host mismatch).
"""

import argparse
import os
import tempfile
import time

import numpy as np
import pytest

from repro.bench import host_metadata, write_artifact
from repro.graphs.generators import barabasi_albert_graph
from repro.rng import ensure_rng
from repro.walks.batch import run_walk_batch
from repro.walks.parallel import ShardedWalkEngine, default_worker_count
from repro.walks.transitions import (
    MetropolisHastingsWalk,
    SimpleRandomWalk,
)
from repro.walks.walker import run_walk


@pytest.fixture(scope="module")
def csr():
    return barabasi_albert_graph(2000, 8, seed=42).relabeled().compile()


def test_batch_round_throughput(benchmark, csr):
    rng = ensure_rng(1)
    starts = np.zeros(1024, dtype=np.int64)
    result = benchmark(
        lambda: run_walk_batch(csr, SimpleRandomWalk(), starts, 100, seed=rng)
    )
    assert result.k == 1024


def test_sharded_round_throughput(benchmark, csr):
    starts = np.zeros(1024, dtype=np.int64)
    with ShardedWalkEngine(csr, n_workers=min(2, default_worker_count())) as engine:
        rng = ensure_rng(1)
        result = benchmark(
            lambda: engine.run_walk_batch(SimpleRandomWalk(), starts, 100, seed=rng)
        )
    assert result.k == 1024


# ----------------------------------------------------------------------
# CLI artifact mode
# ----------------------------------------------------------------------
def _time_scalar(graph, design, walks, steps, seed) -> dict:
    rng = ensure_rng(seed)
    begin = time.perf_counter()
    for _ in range(walks):
        run_walk(graph, design, 0, steps, seed=rng)
    elapsed = time.perf_counter() - begin
    return {
        "walks": walks,
        "seconds": elapsed,
        "steps_per_sec": walks * steps / elapsed,
    }


def _time_batch(csr, design, k, rounds, steps, seed) -> dict:
    rng = ensure_rng(seed)
    starts = np.zeros(k, dtype=np.int64)
    begin = time.perf_counter()
    for _ in range(rounds):
        run_walk_batch(csr, design, starts, steps, seed=rng)
    elapsed = time.perf_counter() - begin
    return {
        "k": k,
        "rounds": rounds,
        "seconds": elapsed,
        "steps_per_sec": k * rounds * steps / elapsed,
    }


def _time_sharded(
    csr, design, workers, k, rounds, steps, seed, slab_storage, slab_dir
) -> dict:
    starts = np.zeros(k, dtype=np.int64)
    with ShardedWalkEngine(
        csr, n_workers=workers, slab_storage=slab_storage, slab_dir=slab_dir
    ) as engine:
        # Warm the pool (worker spawn + first-task import) outside the
        # timed region: the engine is a persistent resource, and the
        # steady state is what the scaling claim is about.
        engine.run_walk_batch(design, starts[: min(k, workers)], 1, seed=seed)
        rng = ensure_rng(seed)
        begin = time.perf_counter()
        for _ in range(rounds):
            engine.run_walk_batch(design, starts, steps, seed=rng)
        elapsed = time.perf_counter() - begin
    return {
        "workers": workers,
        "k": k,
        "rounds": rounds,
        "seconds": elapsed,
        "steps_per_sec": k * rounds * steps / elapsed,
    }


def run_comparison(
    nodes: int = 2000,
    attach: int = 8,
    steps: int = 200,
    k: int = 4096,
    rounds: int = 3,
    scalar_walks: int = 200,
    workers=(1, 2, 4, 8),
    seed: int = 42,
    slab_storage: str = "shm",
    slab_dir=None,
) -> dict:
    """Scalar vs. batch vs. sharded throughput on the benchmark graph."""
    graph = barabasi_albert_graph(nodes, attach, seed=seed).relabeled()
    csr = graph.compile()
    designs = {
        "srw": SimpleRandomWalk(),
        "mhrw": MetropolisHastingsWalk(),
    }
    record = {
        "benchmark": "sharded_walk_throughput",
        "graph": {
            "model": "barabasi_albert",
            "nodes": graph.number_of_nodes(),
            "edges": graph.number_of_edges(),
            "seed": seed,
        },
        "host": {
            "cpu_count": default_worker_count(),
            "pid_cpu_count": os.cpu_count(),
            "slab_storage": slab_storage,
        },
        "steps_per_walk": steps,
        "k": k,
        "designs": {},
    }
    for name, design in designs.items():
        scalar = _time_scalar(graph, design, scalar_walks, steps, seed)
        batch = _time_batch(csr, design, k, rounds, steps, seed)
        batch["speedup_vs_scalar"] = batch["steps_per_sec"] / scalar["steps_per_sec"]
        sharded = {}
        for w in workers:
            timing = _time_sharded(
                csr, design, w, k, rounds, steps, seed, slab_storage, slab_dir
            )
            timing["speedup_vs_batch"] = (
                timing["steps_per_sec"] / batch["steps_per_sec"]
            )
            timing["speedup_vs_scalar"] = (
                timing["steps_per_sec"] / scalar["steps_per_sec"]
            )
            sharded[str(w)] = timing
        record["designs"][name] = {
            "scalar": scalar,
            "batch": batch,
            "sharded": sharded,
        }
    return record


def main(argv=None) -> None:
    parser = argparse.ArgumentParser(
        description="Scalar vs. batch vs. sharded walk-engine throughput"
    )
    parser.add_argument("--out", default="BENCH_parallel.json")
    parser.add_argument("--nodes", type=int, default=2000)
    parser.add_argument("--steps", type=int, default=200)
    parser.add_argument("--k", type=int, default=4096)
    parser.add_argument("--rounds", type=int, default=3)
    parser.add_argument("--scalar-walks", type=int, default=200)
    parser.add_argument("--workers", type=int, nargs="+", default=[1, 2, 4, 8])
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument(
        "--slab-storage",
        choices=("shm", "file"),
        default="shm",
        help="slab backend the sharded engine publishes through",
    )
    parser.add_argument(
        "--slab-dir",
        default=None,
        help=(
            "directory for --slab-storage file slabs "
            "(default: a temporary directory, removed afterwards)"
        ),
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="tiny budget for CI smoke runs (overrides nodes/steps/k)",
    )
    args = parser.parse_args(argv)
    if any(w < 1 for w in args.workers):
        parser.error(f"--workers must all be >= 1, got {args.workers}")
    if args.quick:
        args.nodes, args.steps, args.k = 500, 50, 512
        args.rounds, args.scalar_walks = 2, 50
    with tempfile.TemporaryDirectory(prefix="bench-slabs-") as scratch:
        slab_dir = args.slab_dir or scratch
        record = run_comparison(
            nodes=args.nodes,
            steps=args.steps,
            k=args.k,
            rounds=args.rounds,
            scalar_walks=args.scalar_walks,
            workers=tuple(args.workers),
            seed=args.seed,
            slab_storage=args.slab_storage,
            slab_dir=slab_dir if args.slab_storage == "file" else None,
        )
    write_artifact(
        record,
        args.out,
        scale="smoke" if args.quick else "full",
        host={**host_metadata(), "slab_storage": args.slab_storage},
    )
    print(f"host cpus: {record['host']['cpu_count']}")
    for name, entry in record["designs"].items():
        print(
            f"{name}: scalar {entry['scalar']['steps_per_sec']:,.0f} | "
            f"batch {entry['batch']['steps_per_sec']:,.0f} steps/sec"
        )
        for w, timing in entry["sharded"].items():
            print(
                f"  workers={w}: {timing['steps_per_sec']:,.0f} steps/sec "
                f"({timing['speedup_vs_batch']:.2f}x batch)"
            )
    print(f"wrote {args.out}")


if __name__ == "__main__":
    main()
