"""Figure 2: IDEAL-WALK cost per sample vs walk length, five models."""

from benchmarks.support import run_and_render


def test_figure2(benchmark):
    result = run_and_render(benchmark, "figure2")
    (series_list,) = result.panels.values()
    for series in series_list:
        finite = [(x, y) for x, y in zip(series.x, series.y) if y != float("inf")]
        assert finite, series.label
        # Paper shape: cost rises again for overly long walks.
        best = min(y for _, y in finite)
        assert finite[-1][1] >= best
