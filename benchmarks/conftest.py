"""Benchmark-suite configuration.

The rendered experiment tables produced during the benchmarks are emitted
in the terminal summary (hook output bypasses pytest's capture), so a plain
``pytest benchmarks/ --benchmark-only`` run — teed to ``bench_output.txt``
— doubles as the measured-results record EXPERIMENTS.md references.  With
capture disabled (``-s``) the tables already appeared live, so the hook
skips them — each result is reported exactly once either way.
"""

from benchmarks import support


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    support.emit_terminal_summary(
        terminalreporter.write_line,
        already_shown_live=config.getoption("capture") == "no",
    )
