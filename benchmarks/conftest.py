"""Benchmark-suite configuration.

The rendered experiment tables produced during the benchmarks are emitted
in the terminal summary (hook output bypasses pytest's capture), so a plain
``pytest benchmarks/ --benchmark-only`` run — teed to ``bench_output.txt``
— doubles as the measured-results record EXPERIMENTS.md references.
"""

from benchmarks import support


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    if not support.RENDERED_RESULTS:
        return
    terminalreporter.write_line("")
    terminalreporter.write_line("=" * 74)
    terminalreporter.write_line("Measured experiment results (quick scale)")
    terminalreporter.write_line("=" * 74)
    for text in support.RENDERED_RESULTS:
        terminalreporter.write_line("")
        terminalreporter.write_line(text)
