"""Figure 11: synthetic BA graphs of growing size (SRW input)."""

import numpy as np

from benchmarks.support import run_and_render


def test_figure11(benchmark):
    result = run_and_render(benchmark, "figure11")
    assert set(result.panels) == {
        "(a) relative error vs query cost",
        "(b) relative error vs number of samples",
    }
    cost_panel = result.panels["(a) relative error vs query cost"]
    # Three sizes, two samplers each.
    assert len(cost_panel) == 6
    we_final = [s.y[-1] for s in cost_panel if s.label.startswith("WE")]
    srw_final = [s.y[-1] for s in cost_panel if s.label.startswith("SRW")]
    assert np.mean(we_final) < np.mean(srw_final) + 0.05
