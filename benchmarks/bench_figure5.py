"""Figure 5: WE's limitation on long-diameter cycle graphs."""

from benchmarks.support import run_and_render


def test_figure5(benchmark):
    result = run_and_render(benchmark, "figure5")
    (series_list,) = result.panels.values()
    we = next(s for s in series_list if s.label == "WE")
    srw = next(s for s in series_list if s.label == "SRW")
    # Paper shape: WE cost explodes with diameter; monitored SRW is flat.
    assert we.y[-1] > 2 * we.y[0]
    assert max(srw.y) < 2 * min(srw.y) + 1e-9
    assert we.y[-1] > srw.y[-1]
