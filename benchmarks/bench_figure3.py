"""Figure 3: IDEAL-WALK query-cost saving vs graph size, five models."""

from benchmarks.support import run_and_render


def test_figure3(benchmark):
    result = run_and_render(benchmark, "figure3")
    (series_list,) = result.panels.values()
    by_label = {s.label: s for s in series_list}
    # Paper shape: barbell savings rise with size and end very high.
    barbell = by_label["barbell"].y
    assert barbell == sorted(barbell)
    assert barbell[-1] > 50.0
    # Every model shows positive savings at moderate sizes.
    for label, series in by_label.items():
        assert max(series.y) > 0.0, label
