"""Fault injection: chaos campaigns cost time, never money or coverage.

Two modes share this file:

* **pytest mode** (``pytest benchmarks/bench_faults.py``) — asserts the
  resilience acceptance pins at a quick scale: a crawl through a scripted
  fault storm (behind :class:`~repro.osn.resilience.ResilientAPI`) pays
  exactly the fault-free query cost and discovers exactly the fault-free
  rows, and a sharded walk round with a worker crash recovers
  bit-identically to a crash-free round.
* **CLI artifact mode** (``python benchmarks/bench_faults.py --out
  BENCH_faults.json``) — one self-contained record CI uploads: fault-free
  vs. chaos crawl campaigns on the same hidden graph, plus the
  crash-recovery pin.

Honesty note: every headline metric here is **deterministic** — simulated
seconds on the :class:`~repro.crawl.clock.FakeClock`, §2.4 query costs,
injected-fault counts, retry totals, and a trajectory checksum.  The
committed artifact is reproducible bit for bit; CI runs the campaign
twice and byte-diffs the ``--replay-out`` document to prove it.  Real
(process) seconds ride along only to keep the fault-free path's overhead
visible in the timing band.
"""

import argparse
import json
import time

import numpy as np

from repro.bench import write_artifact
from repro.crawl import AsyncCrawler, FakeClock
from repro.faults import FaultPlan, FaultRule, FaultyAPI
from repro.graphs.generators import barabasi_albert_graph
from repro.osn import ResilientAPI, RetryPolicy
from repro.osn.api import SocialNetworkAPI
from repro.walks.parallel import ShardedWalkEngine
from repro.walks.transitions import SimpleRandomWalk

LATENCY_SCRIPT = [1.0, 0.25, 0.5, 2.0, 0.75, 1.5]

POLICY = RetryPolicy(max_attempts=6, base_backoff=0.5, jitter=0.0)


def _hidden_graph(nodes: int, attach: int, seed: int):
    return barabasi_albert_graph(nodes, attach, seed=seed).relabeled()


def storm_plan(plan_seed: int) -> FaultPlan:
    """The scripted storm every chaos campaign replays: a transient-error
    burst early, a rate-limit spike mid-crawl, then chronically slow
    responses with jittered delays."""
    return FaultPlan(
        rules=(
            FaultRule(kind="error", first_call=2, last_call=4),
            FaultRule(kind="rate_limit", delay=20.0, first_call=8, last_call=8),
            FaultRule(kind="slow", delay=2.0, jitter=0.3, first_call=10),
        ),
        seed=plan_seed,
    )


def crawl_fault_free(graph, concurrency: int, batch_size: int) -> dict:
    """The fault-free twin the chaos campaign is measured against."""
    api = SocialNetworkAPI(graph)
    began = time.perf_counter()
    crawler = AsyncCrawler(
        api, 0, concurrency=concurrency, batch_size=batch_size, latency=LATENCY_SCRIPT
    )
    crawler.crawl()
    return {
        "mode": "fault_free",
        "simulated_seconds": crawler.clock.now,
        "real_seconds": time.perf_counter() - began,
        "query_cost": api.query_cost,
        "rows": api.discovered.fetched_count,
        "batches": crawler.batches_issued,
    }


def crawl_chaos(graph, concurrency: int, batch_size: int, plan: FaultPlan) -> dict:
    """The same campaign through the storm, behind the resilient layer."""
    api = SocialNetworkAPI(graph)
    resilient = ResilientAPI(FaultyAPI(api, plan), POLICY, seed=1)
    began = time.perf_counter()
    crawler = AsyncCrawler(
        resilient,
        0,
        concurrency=concurrency,
        batch_size=batch_size,
        latency=LATENCY_SCRIPT,
    )
    crawler.crawl()
    return {
        "mode": "chaos",
        "simulated_seconds": crawler.clock.now,
        "real_seconds": time.perf_counter() - began,
        "query_cost": api.query_cost,
        "rows": api.discovered.fetched_count,
        "batches": crawler.batches_issued,
        "retries": resilient.retries,
        "failed_attempts": resilient.failed_attempts,
        "injected": dict(resilient.api.injected),
    }


def run_crash_recovery(graph, walks: int, steps: int, seed: int) -> dict:
    """One sharded round with a mid-round worker crash vs. a clean round."""
    starts = np.zeros(walks, dtype=np.int64)
    with ShardedWalkEngine(graph, n_workers=4, mp_context="fork") as engine:
        clean = engine.run_walk_batch(SimpleRandomWalk(), starts, steps, seed=seed)
    with ShardedWalkEngine(graph, n_workers=4, mp_context="fork") as engine:
        engine.schedule_worker_crash(1, 2)
        crashed = engine.run_walk_batch(SimpleRandomWalk(), starts, steps, seed=seed)
        respawns = engine.worker_respawns
    # shard_retries is deliberately NOT recorded: how many sibling
    # futures were in flight when the pool broke is OS-scheduling
    # noise, and every metric here must replay byte-for-byte.
    return {
        "walks": walks,
        "steps": steps,
        "worker_respawns": respawns,
        "recovered_identical": bool(np.array_equal(crashed.paths, clean.paths)),
        "trajectory_checksum": int(clean.paths.sum()),
    }


def run_campaign(
    nodes: int = 1200,
    attach: int = 4,
    concurrency: int = 2,
    batch_size: int = 16,
    walks: int = 256,
    steps: int = 40,
    seed: int = 42,
    plan_seed: int = 7,
) -> dict:
    graph = _hidden_graph(nodes, attach, seed)
    plan = storm_plan(plan_seed)
    fault_free = crawl_fault_free(graph, concurrency, batch_size)
    chaos = crawl_chaos(graph, concurrency, batch_size, plan)
    return {
        "benchmark": "fault_injection",
        "graph": {
            "model": "barabasi_albert",
            "nodes": graph.number_of_nodes(),
            "edges": graph.number_of_edges(),
            "seed": seed,
        },
        "latency_script": LATENCY_SCRIPT,
        "plan": plan.to_dict(),
        "policy": POLICY.to_dict(),
        "crawl": {
            "fault_free": fault_free,
            "chaos": chaos,
            "cost_parity": chaos["query_cost"] == fault_free["query_cost"],
            "row_parity": chaos["rows"] == fault_free["rows"],
            "fault_overhead_simulated": (
                chaos["simulated_seconds"] - fault_free["simulated_seconds"]
            ),
        },
        "crash_recovery": run_crash_recovery(graph, walks, steps, seed),
    }


def replay_document(record: dict) -> dict:
    """The deterministic core of *record*: everything but process time.

    This is what CI byte-diffs across two independent runs — plain JSON,
    no host metadata, no wall-clock noise.
    """

    def strip(value):
        if isinstance(value, dict):
            return {k: strip(v) for k, v in value.items() if k != "real_seconds"}
        return value

    return strip(record)


# ----------------------------------------------------------------------
# pytest mode
# ----------------------------------------------------------------------
QUICK = dict(nodes=300, walks=64, steps=16)


def test_chaos_campaign_pays_fault_free_cost_and_coverage():
    record = run_campaign(**QUICK)
    crawl = record["crawl"]
    assert crawl["cost_parity"] and crawl["row_parity"]
    # The storm actually fired — this is not a vacuous parity.
    assert sum(crawl["chaos"]["injected"].values()) >= 3
    assert crawl["chaos"]["retries"] >= 1
    assert crawl["fault_overhead_simulated"] > 0


def test_crashed_walk_round_recovers_bit_identically():
    record = run_campaign(**QUICK)
    recovery = record["crash_recovery"]
    assert recovery["recovered_identical"]
    assert recovery["worker_respawns"] == 1


def test_replay_document_is_deterministic():
    a, b = run_campaign(**QUICK), run_campaign(**QUICK)
    assert replay_document(a) == replay_document(b)
    assert "real_seconds" not in json.dumps(replay_document(a))


# ----------------------------------------------------------------------
# CLI artifact mode
# ----------------------------------------------------------------------
def main(argv=None) -> None:
    parser = argparse.ArgumentParser(
        description="Chaos crawl campaigns and crash-transparent recovery"
    )
    parser.add_argument("--out", default="BENCH_faults.json")
    parser.add_argument("--nodes", type=int, default=1200)
    parser.add_argument("--concurrency", type=int, default=2)
    parser.add_argument("--batch-size", type=int, default=16)
    parser.add_argument("--walks", type=int, default=256)
    parser.add_argument("--steps", type=int, default=40)
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument("--plan-seed", type=int, default=7)
    parser.add_argument(
        "--replay-out",
        default=None,
        help="also write the deterministic replay document (no process "
        "times) for byte-for-byte comparison across runs",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="tiny budget for CI smoke runs (overrides nodes/walks/steps)",
    )
    args = parser.parse_args(argv)
    if args.quick:
        args.nodes = QUICK["nodes"]
        args.walks, args.steps = QUICK["walks"], QUICK["steps"]
    record = run_campaign(
        nodes=args.nodes,
        concurrency=args.concurrency,
        batch_size=args.batch_size,
        walks=args.walks,
        steps=args.steps,
        seed=args.seed,
        plan_seed=args.plan_seed,
    )
    write_artifact(record, args.out, scale="smoke" if args.quick else "full")
    if args.replay_out is not None:
        with open(args.replay_out, "w", encoding="utf-8") as fh:
            json.dump(replay_document(record), fh, indent=2, sort_keys=True)
            fh.write("\n")
    crawl = record["crawl"]
    print(
        f"fault-free crawl: {crawl['fault_free']['simulated_seconds']:.1f} sim-s "
        f"({crawl['fault_free']['query_cost']} queries)"
    )
    print(
        f"chaos crawl:      {crawl['chaos']['simulated_seconds']:.1f} sim-s "
        f"(+{crawl['fault_overhead_simulated']:.1f} sim-s, "
        f"{sum(crawl['chaos']['injected'].values())} faults, "
        f"{crawl['chaos']['retries']} retries, same cost: {crawl['cost_parity']})"
    )
    recovery = record["crash_recovery"]
    print(
        f"crash recovery:   {recovery['worker_respawns']} respawn(s), "
        f"bit-identical: {recovery['recovered_identical']}"
    )
    print(f"wrote {args.out}")


if __name__ == "__main__":
    main()
