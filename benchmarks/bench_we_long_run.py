"""Ablation: the §6.1 future-work WALK-ESTIMATE over one long run."""

from benchmarks.support import run_and_render


def test_we_long_run(benchmark):
    result = run_and_render(benchmark, "we_long_run")
    (table,) = result.tables.values()
    rows = {row[0]: row for row in table.rows}
    classical = rows["one long run (classical)"]
    we_long = rows["WE one long run"]
    we_short = rows["WE short runs"]
    # The corrected long run must not be more biased than the classical
    # long run (l_inf column), and costs fewer queries than short runs.
    assert we_long[1] <= classical[1] + 0.01
    assert we_long[3] <= we_short[3]
