"""Ablation: many short runs vs one long run (§6.1, Eq. 25)."""

from benchmarks.support import run_and_render


def test_long_run(benchmark):
    result = run_and_render(benchmark, "long_run")
    (table,) = result.tables.values()
    by_name = {row[0]: row for row in table.rows}
    short = by_name["many short runs"]
    long_row = by_name["one long run"]
    # Long run: cheaper per sample, but worth fewer effective samples.
    assert long_row[4] < short[4]  # query cost
    assert long_row[2] < short[2]  # effective sample size
