"""Shared helper for the benchmark suite.

Each benchmark regenerates one paper artifact (figure/table) at the
``quick`` scale, times it via pytest-benchmark, and registers the rendered
series for the terminal summary (see ``conftest.py``) — so a plain
``pytest benchmarks/ --benchmark-only`` run leaves a complete
measured-results record (the one EXPERIMENTS.md references).
"""

from __future__ import annotations

from typing import List

from repro.experiments.registry import run_experiment
from repro.experiments.reporting import render_result
from repro.experiments.runner import ExperimentResult

#: Rendered experiment reports, printed by conftest's terminal-summary hook.
RENDERED_RESULTS: List[str] = []


def run_and_render(benchmark, experiment_id: str, seed: int = 3) -> ExperimentResult:
    """Run one experiment exactly once under the benchmark timer."""
    result = benchmark.pedantic(
        run_experiment,
        args=(experiment_id,),
        kwargs={"scale": "quick", "seed": seed},
        rounds=1,
        iterations=1,
    )
    rendered = render_result(result)
    RENDERED_RESULTS.append(rendered)
    print(rendered)  # visible live under -s; summary hook covers plain runs
    return result
