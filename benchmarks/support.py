"""Shared helper for the benchmark suite.

Each benchmark regenerates one paper artifact (figure/table) at the
``quick`` scale, times it via pytest-benchmark, and registers the rendered
series for the terminal summary (see ``conftest.py``) — so a plain
``pytest benchmarks/ --benchmark-only`` run leaves a complete
measured-results record (the one EXPERIMENTS.md references).

Each rendered result is reported **exactly once per run**: under normal
captured runs the live ``print`` is swallowed by pytest, so the
terminal-summary hook emits the block; under ``pytest -s`` (capture
disabled) the live prints are already visible, so the hook stays silent
instead of duplicating every report.
"""

from __future__ import annotations

from typing import Callable, List

from repro.experiments.registry import run_experiment
from repro.experiments.reporting import render_result
from repro.experiments.runner import ExperimentResult

#: Rendered experiment reports, printed by conftest's terminal-summary hook.
RENDERED_RESULTS: List[str] = []


def run_and_render(benchmark, experiment_id: str, seed: int = 3) -> ExperimentResult:
    """Run one experiment exactly once under the benchmark timer."""
    result = benchmark.pedantic(
        run_experiment,
        args=(experiment_id,),
        kwargs={"scale": "quick", "seed": seed},
        rounds=1,
        iterations=1,
    )
    rendered = render_result(result)
    RENDERED_RESULTS.append(rendered)
    print(rendered)  # live view; invisible unless capture is disabled (-s)
    return result


def emit_terminal_summary(
    write_line: Callable[[str], None], *, already_shown_live: bool
) -> bool:
    """Write the rendered-results block once; return whether it was written.

    *already_shown_live* is True when pytest ran with capture disabled
    (``-s`` / ``--capture=no``): the live prints in
    :func:`run_and_render` already reached the terminal, so re-printing
    from the summary hook would duplicate every report.
    """
    if not RENDERED_RESULTS or already_shown_live:
        return False
    write_line("")
    write_line("=" * 74)
    write_line("Measured experiment results (quick scale)")
    write_line("=" * 74)
    for text in RENDERED_RESULTS:
        write_line("")
        write_line(text)
    return True
