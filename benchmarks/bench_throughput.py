"""Raw throughput benchmarks for the hot paths, scalar vs. batch.

Two modes share this file:

* **pytest-benchmark tests** (``pytest benchmarks/bench_throughput.py``) —
  statistical timing of the per-operation costs that dominate every
  experiment: forward walk steps, backward-estimate realizations, full
  WALK-ESTIMATE samples, and the batch engine at several widths.
* **CLI artifact mode** (``python benchmarks/bench_throughput.py --out
  BENCH_throughput.json``) — one self-contained comparison of the scalar
  walker against the vectorized batch engine at K ∈ {1, 64, 1024},
  reporting walks/sec, steps/sec, and the batch/scalar speedup as a JSON
  record CI uploads as an artifact.  ``--quick`` shrinks the budget for
  smoke runs.
"""

import argparse
import time

import numpy as np
import pytest

from repro.bench import write_artifact
from repro.core.config import WalkEstimateConfig
from repro.core.crawl import InitialCrawl
from repro.core.unbiased import unbiased_estimate_batch
from repro.core.walk_estimate import we_full_sampler
from repro.core.weighted import ForwardHistory, weighted_backward_estimate
from repro.errors import ConfigurationError
from repro.graphs.generators import barabasi_albert_graph
from repro.osn.api import SocialNetworkAPI
from repro.rng import ensure_rng
from repro.walks.batch import run_walk_batch
from repro.walks.kernels import set_default_backend
from repro.walks.transitions import (
    LazyWalk,
    MaxDegreeWalk,
    MetropolisHastingsWalk,
    SimpleRandomWalk,
)
from repro.walks.walker import run_walk


@pytest.fixture(scope="module")
def graph():
    return barabasi_albert_graph(2000, 8, seed=42).relabeled()


@pytest.fixture(scope="module")
def csr(graph):
    return graph.compile()


def test_srw_walk_throughput(benchmark, graph):
    rng = ensure_rng(1)
    result = benchmark(lambda: run_walk(graph, SimpleRandomWalk(), 0, 200, seed=rng))
    assert result.steps == 200


def test_mhrw_walk_throughput(benchmark, graph):
    rng = ensure_rng(2)
    result = benchmark(
        lambda: run_walk(graph, MetropolisHastingsWalk(), 0, 200, seed=rng)
    )
    assert result.steps == 200


def test_srw_batch_walk_throughput(benchmark, csr):
    rng = ensure_rng(1)
    starts = np.zeros(256, dtype=np.int64)
    result = benchmark(
        lambda: run_walk_batch(csr, SimpleRandomWalk(), starts, 200, seed=rng)
    )
    assert result.steps == 200 and result.k == 256


def test_mhrw_batch_walk_throughput(benchmark, csr):
    rng = ensure_rng(2)
    starts = np.zeros(256, dtype=np.int64)
    result = benchmark(
        lambda: run_walk_batch(csr, MetropolisHastingsWalk(), starts, 200, seed=rng)
    )
    assert result.steps == 200 and result.k == 256


def test_lazy_srw_batch_walk_throughput(benchmark, csr):
    rng = ensure_rng(4)
    design = LazyWalk(SimpleRandomWalk(), 0.5)
    starts = np.zeros(256, dtype=np.int64)
    result = benchmark(lambda: run_walk_batch(csr, design, starts, 200, seed=rng))
    assert result.steps == 200 and result.k == 256


def test_maxdeg_batch_walk_throughput(benchmark, csr):
    rng = ensure_rng(5)
    design = MaxDegreeWalk(csr.max_degree())
    starts = np.zeros(256, dtype=np.int64)
    result = benchmark(lambda: run_walk_batch(csr, design, starts, 200, seed=rng))
    assert result.steps == 200 and result.k == 256


def test_backward_estimate_throughput(benchmark, graph):
    rng = ensure_rng(3)
    design = SimpleRandomWalk()
    crawl = InitialCrawl(SocialNetworkAPI(graph), design, 0, hops=2)
    history = ForwardHistory(0, 9)
    for _ in range(30):
        history.record(run_walk(graph, design, 0, 9, seed=rng))
    value = benchmark(
        lambda: weighted_backward_estimate(
            graph, design, 1500, 0, 9, history=history, crawl=crawl, seed=rng
        )
    )
    assert value >= 0.0


def test_batch_backward_estimate_throughput(benchmark, csr):
    rng = ensure_rng(3)
    nodes = np.arange(0, 1500, 25, dtype=np.int64)
    values = benchmark(
        lambda: unbiased_estimate_batch(
            csr, SimpleRandomWalk(), nodes, 0, 9, seed=rng, repetitions=12
        )
    )
    assert values.shape == nodes.shape


def test_walk_estimate_sample_throughput(benchmark, graph):
    design = SimpleRandomWalk()
    config = WalkEstimateConfig(diameter_hint=4, crawl_hops=1, calibration_walks=5)

    def one_batch():
        api = SocialNetworkAPI(graph)
        return we_full_sampler(design, config).sample(api, 0, count=10, seed=7)

    batch = benchmark(one_batch)
    assert len(batch) == 10


# ----------------------------------------------------------------------
# CLI artifact mode: scalar vs. batch engine comparison
# ----------------------------------------------------------------------
def _time_scalar(graph, design, walks, steps, seed) -> dict:
    """Time *walks* independent scalar walks; one shared generator."""
    rng = ensure_rng(seed)
    begin = time.perf_counter()
    for _ in range(walks):
        run_walk(graph, design, 0, steps, seed=rng)
    elapsed = time.perf_counter() - begin
    return {
        "walks": walks,
        "seconds": elapsed,
        "walks_per_sec": walks / elapsed,
        "steps_per_sec": walks * steps / elapsed,
    }


def _time_batch(csr, design, k, rounds, steps, seed, backend=None) -> dict:
    """Time *rounds* batch launches of width *k* each."""
    rng = ensure_rng(seed)
    starts = np.zeros(k, dtype=np.int64)
    begin = time.perf_counter()
    for _ in range(rounds):
        run_walk_batch(csr, design, starts, steps, seed=rng, backend=backend)
    elapsed = time.perf_counter() - begin
    walks = k * rounds
    return {
        "k": k,
        "rounds": rounds,
        "walks": walks,
        "seconds": elapsed,
        "walks_per_sec": walks / elapsed,
        "steps_per_sec": walks * steps / elapsed,
    }


def run_comparison(
    nodes: int = 2000,
    attach: int = 8,
    steps: int = 200,
    scalar_walks: int = 200,
    widths=(1, 64, 1024),
    seed: int = 42,
    kernel_backend: str = "numpy",
) -> dict:
    """Scalar-vs-batch walk throughput on the synthetic benchmark graph."""
    graph = barabasi_albert_graph(nodes, attach, seed=seed).relabeled()
    csr = graph.compile()
    designs = {
        "srw": SimpleRandomWalk(),
        "mhrw": MetropolisHastingsWalk(),
        "lazy-srw": LazyWalk(SimpleRandomWalk(), 0.5),
        "maxdeg": MaxDegreeWalk(graph.max_degree()),
    }
    record = {
        "benchmark": "walk_throughput",
        "kernel_backend": kernel_backend,
        "graph": {
            "model": "barabasi_albert",
            "nodes": graph.number_of_nodes(),
            "edges": graph.number_of_edges(),
            "seed": seed,
        },
        "steps_per_walk": steps,
        "designs": {},
    }
    # A JIT backend compiles its trajectory kernel on first call; pay
    # that once here so no timed row carries the compilation.
    run_walk_batch(
        csr,
        LazyWalk(SimpleRandomWalk(), 0.5),
        np.zeros(1, dtype=np.int64),
        1,
        seed=0,
        backend=kernel_backend,
    )
    for name, design in designs.items():
        scalar = _time_scalar(graph, design, scalar_walks, steps, seed)
        batch = {}
        for k in widths:
            # Match total walk work to the scalar run where K allows it,
            # with at least one round per width.
            rounds = max(1, scalar_walks // k)
            timing = _time_batch(
                csr, design, k, rounds, steps, seed, backend=kernel_backend
            )
            timing["speedup_steps_per_sec"] = (
                timing["steps_per_sec"] / scalar["steps_per_sec"]
            )
            batch[str(k)] = timing
        record["designs"][name] = {"scalar": scalar, "batch": batch}
    return record


def main(argv=None) -> None:
    parser = argparse.ArgumentParser(
        description="Scalar vs. batch walk-engine throughput comparison"
    )
    parser.add_argument("--out", default="BENCH_throughput.json")
    parser.add_argument("--nodes", type=int, default=2000)
    parser.add_argument("--steps", type=int, default=200)
    parser.add_argument("--scalar-walks", type=int, default=200)
    parser.add_argument(
        "--k", type=int, nargs="+", default=[1, 64, 1024], dest="widths"
    )
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument(
        "--backend",
        choices=("numpy", "native"),
        default="numpy",
        help="kernel backend timed in the batch rows (native needs numba; "
        "the backend is recorded in the artifact's host block so the "
        "regression checker only compares like with like)",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="tiny budget for CI smoke runs (overrides nodes/steps/walks)",
    )
    args = parser.parse_args(argv)
    if any(k < 1 for k in args.widths):
        parser.error(f"--k widths must be >= 1, got {args.widths}")
    if args.quick:
        args.nodes, args.steps, args.scalar_walks = 500, 50, 50
    try:
        # Strict: a benchmark must never silently fall back — the numbers
        # would be labeled with a backend that never ran.  Setting the
        # process default also stamps host_metadata()'s kernel_backend.
        set_default_backend(args.backend)
    except ConfigurationError as error:
        parser.error(str(error))
    record = run_comparison(
        nodes=args.nodes,
        steps=args.steps,
        scalar_walks=args.scalar_walks,
        widths=tuple(args.widths),
        seed=args.seed,
        kernel_backend=args.backend,
    )
    write_artifact(record, args.out, scale="smoke" if args.quick else "full")
    print(f"kernel backend: {args.backend}")
    for name, entry in record["designs"].items():
        scalar = entry["scalar"]["steps_per_sec"]
        print(f"{name}: scalar {scalar:,.0f} steps/sec")
        for k, timing in entry["batch"].items():
            print(
                f"  K={k:>5}: {timing['steps_per_sec']:,.0f} steps/sec "
                f"({timing['speedup_steps_per_sec']:.1f}x)"
            )
    print(f"wrote {args.out}")


if __name__ == "__main__":
    main()
