"""Raw throughput benchmarks for the hot paths.

Unlike the experiment benchmarks (one timed run each), these use
pytest-benchmark's statistical timing to track the per-operation costs that
dominate every experiment: forward walk steps, backward-estimate
realizations, and full WALK-ESTIMATE samples.
"""

import pytest

from repro.core.config import WalkEstimateConfig
from repro.core.crawl import InitialCrawl
from repro.core.walk_estimate import we_full_sampler
from repro.core.weighted import ForwardHistory, weighted_backward_estimate
from repro.graphs.generators import barabasi_albert_graph
from repro.osn.api import SocialNetworkAPI
from repro.rng import ensure_rng
from repro.walks.transitions import MetropolisHastingsWalk, SimpleRandomWalk
from repro.walks.walker import run_walk


@pytest.fixture(scope="module")
def graph():
    return barabasi_albert_graph(2000, 8, seed=42).relabeled()


def test_srw_walk_throughput(benchmark, graph):
    rng = ensure_rng(1)
    result = benchmark(lambda: run_walk(graph, SimpleRandomWalk(), 0, 200, seed=rng))
    assert result.steps == 200


def test_mhrw_walk_throughput(benchmark, graph):
    rng = ensure_rng(2)
    result = benchmark(
        lambda: run_walk(graph, MetropolisHastingsWalk(), 0, 200, seed=rng)
    )
    assert result.steps == 200


def test_backward_estimate_throughput(benchmark, graph):
    rng = ensure_rng(3)
    design = SimpleRandomWalk()
    crawl = InitialCrawl(SocialNetworkAPI(graph), design, 0, hops=2)
    history = ForwardHistory(0, 9)
    for _ in range(30):
        history.record(run_walk(graph, design, 0, 9, seed=rng))
    value = benchmark(
        lambda: weighted_backward_estimate(
            graph, design, 1500, 0, 9, history=history, crawl=crawl, seed=rng
        )
    )
    assert value >= 0.0


def test_walk_estimate_sample_throughput(benchmark, graph):
    design = SimpleRandomWalk()
    config = WalkEstimateConfig(
        diameter_hint=4, crawl_hops=1, calibration_walks=5
    )

    def one_batch():
        api = SocialNetworkAPI(graph)
        return we_full_sampler(design, config).sample(api, 0, count=10, seed=7)

    batch = benchmark(one_batch)
    assert len(batch) == 10
