"""The theory behind WALK-ESTIMATE: IDEAL-WALK on the §4.2 graph models.

Reproduces the paper's analytical case study on a laptop in seconds:

1. the cost-per-sample curve ``c(t) = t / acceptance(t)`` over walk length
   (Figure 2's U-shape: infinite before the diameter, sharp drop, shallow
   rise) for five classic graph models;
2. the optimal short-walk length and the saving over the traditional
   burn-in walk (Figure 3);
3. Theorem 1's Lambert-W closed form for ``t_opt`` next to the exact
   oracle optimum.

Run:  python examples/ideal_walk_theory.py
"""

from repro.core.ideal import IdealWalk
from repro.markov.mixing import spectral_gap
from repro.markov.matrix import TransitionMatrix
from repro.theory.case_studies import build_case_study_graph, default_design
from repro.theory.theorem1 import optimal_walk_length_closed_form

MODELS = ("barbell", "cycle", "hypercube", "tree", "barabasi")
WALK_LENGTHS = (2, 4, 8, 16, 32, 64)


def main() -> None:
    print(f"{'model':10s} " + " ".join(f"c(t={t:<3d})" for t in WALK_LENGTHS)
          + "   t_opt  c_min   saving  t_opt(thm1)")
    for model in MODELS:
        graph = build_case_study_graph(model, 31).relabeled()
        design = default_design()
        ideal = IdealWalk(graph, design, start=0)
        costs = []
        for t in WALK_LENGTHS:
            c = ideal.expected_cost_per_sample(t)
            costs.append(f"{c:8.1f}" if c != float("inf") else "     inf")
        t_opt, c_min = ideal.optimal_walk_length(max_t=256)
        saving = ideal.savings(relative_delta=0.1, max_t=256)
        matrix = TransitionMatrix(graph, design)
        gap = spectral_gap(matrix)
        t_thm = optimal_walk_length_closed_form(
            gap, graph.max_degree(), gamma=1.0
        )
        print(
            f"{model:10s} " + " ".join(costs)
            + f"   {t_opt:5d} {c_min:6.1f}  {100 * saving:5.1f}%  {t_thm:9.1f}"
        )
    print(
        "\nReading: costs are infinite until the walk can reach every node,"
        "\nthen drop fast to a minimum a few steps past the diameter, then"
        "\nclimb slowly — walking much past the optimum only wastes queries."
    )


if __name__ == "__main__":
    main()
