"""Quickstart: sample an OSN surrogate with WALK-ESTIMATE vs burn-in SRW.

Builds a Google-Plus-like hidden graph, exposes it through the restricted
local-neighborhood API, and draws degree-proportional samples two ways:

* the traditional way — simple random walk with a Geweke-monitored burn-in
  per sample ("wait");
* the paper's way — WALK-ESTIMATE: short walk + backward probability
  estimate + rejection ("walk, not wait").

Both estimate the network's average degree; the point to watch is the
query cost each sampler paid per unit of accuracy.

Run:  python examples/quickstart.py
"""

from repro import (
    QueryBudget,
    SimpleRandomWalk,
    SocialNetworkAPI,
    WalkEstimateConfig,
    we_full_sampler,
)
from repro.datasets import google_plus_surrogate
from repro.estimators.aggregates import average_estimate
from repro.estimators.metrics import relative_error
from repro.walks import BurnInSampler

SEED = 7
BUDGET = 2500  # unique-node queries each sampler may spend


def main() -> None:
    dataset = google_plus_surrogate(nodes=4000, m=12, seed=SEED)
    graph = dataset.graph
    truth = dataset.aggregates["degree"]
    print(f"hidden graph: {graph}")
    print(f"true average degree: {truth:.2f}\n")

    design = SimpleRandomWalk()  # target: degree-proportional samples
    start = 0

    # --- traditional: many short runs, Geweke-monitored burn-in ----------
    api = SocialNetworkAPI(graph, budget=QueryBudget(BUDGET))
    burnin = BurnInSampler(design)
    batch = burnin.sample(api, start, count=200, seed=SEED)
    values = [graph.get_attribute("degree", node) for node in batch.nodes]
    estimate = average_estimate(batch, values)
    print("SRW + burn-in   :"
          f" {len(batch):3d} samples, {api.query_cost:5d} queries,"
          f" AVG degree ~ {estimate:7.2f}"
          f" (rel. error {relative_error(estimate, truth):.3f})")

    # --- WALK-ESTIMATE: walk short, estimate, correct --------------------
    api = SocialNetworkAPI(graph, budget=QueryBudget(BUDGET))
    config = WalkEstimateConfig(diameter_hint=4, crawl_hops=1)
    sampler = we_full_sampler(design, config)
    batch = sampler.sample(api, start, count=200, seed=SEED)
    values = [graph.get_attribute("degree", node) for node in batch.nodes]
    estimate = average_estimate(batch, values)
    report = sampler.last_report
    print("WALK-ESTIMATE   :"
          f" {len(batch):3d} samples, {api.query_cost:5d} queries,"
          f" AVG degree ~ {estimate:7.2f}"
          f" (rel. error {relative_error(estimate, truth):.3f})")
    print(f"                  acceptance rate {report.acceptance_rate:.2f}, "
          f"{report.forward_walks} forward walks, "
          f"{report.backward_steps} backward steps")


if __name__ == "__main__":
    main()
