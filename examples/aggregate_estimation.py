"""Third-party analytics over a Yelp-like OSN: estimate four AVG aggregates.

This is the paper's motivating scenario (§1): a third party with only
local-neighborhood API access wants statistically sound aggregates —
average degree, star rating, shortest-path length, clustering coefficient —
without crawling the whole site.  WALK-ESTIMATE and the burn-in baseline
are given the same query budget and scored on every aggregate.

Run:  python examples/aggregate_estimation.py
"""

from repro import (
    QueryBudget,
    SimpleRandomWalk,
    SocialNetworkAPI,
    WalkEstimateConfig,
    we_full_sampler,
)
from repro.datasets import yelp_surrogate
from repro.estimators.aggregates import average_estimate
from repro.estimators.metrics import relative_error
from repro.walks import BurnInSampler

SEED = 21
BUDGET = 3200


def estimate_all(dataset, batch) -> dict[str, tuple[float, float]]:
    """{aggregate: (estimate, relative error)} for one sample batch."""
    results = {}
    for attribute, truth in sorted(dataset.aggregates.items()):
        values = [
            dataset.graph.get_attribute(attribute, node) for node in batch.nodes
        ]
        estimate = average_estimate(batch, values)
        results[attribute] = (estimate, relative_error(estimate, truth))
    return results


def main() -> None:
    dataset = yelp_surrogate(nodes=4000, m=8, seed=SEED)
    graph = dataset.graph
    print(f"hidden graph: {graph}")
    for attribute, truth in sorted(dataset.aggregates.items()):
        print(f"  true AVG {attribute:12s} = {truth:8.3f}")
    print()

    design = SimpleRandomWalk()
    # Start from an ordinary low-degree user (the realistic case: a third
    # party starts from its own account).  Starting at a hub would also
    # make the 2-hop initial crawl very expensive — see WalkEstimateConfig.
    start = graph.nodes()[-1]

    api = SocialNetworkAPI(graph, budget=QueryBudget(BUDGET))
    baseline_batch = BurnInSampler(design).sample(api, start, count=200, seed=SEED)
    baseline_cost = api.query_cost

    api = SocialNetworkAPI(graph, budget=QueryBudget(BUDGET))
    config = WalkEstimateConfig(diameter_hint=5, crawl_hops=2)
    sampler = we_full_sampler(design, config)
    we_batch = sampler.sample(api, start, count=200, seed=SEED)
    we_cost = api.query_cost

    print(
        f"{'aggregate':14s} {'SRW est':>10s} {'err':>7s}   {'WE est':>10s} {'err':>7s}"
    )
    baseline = estimate_all(dataset, baseline_batch)
    walk_estimate = estimate_all(dataset, we_batch)
    for attribute in sorted(dataset.aggregates):
        b_est, b_err = baseline[attribute]
        w_est, w_err = walk_estimate[attribute]
        print(
            f"{attribute:14s} {b_est:10.3f} {b_err:7.3f}   {w_est:10.3f} {w_err:7.3f}"
        )
    print(
        f"\nquery cost: SRW {baseline_cost} ({len(baseline_batch)} samples), "
        f"WE {we_cost} ({len(we_batch)} samples)"
    )


if __name__ == "__main__":
    main()
