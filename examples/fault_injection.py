"""Deterministic chaos: crawl through a fault storm, pay nothing extra.

The resilience stack in one sitting.  A :class:`FaultPlan` scripts a
storm — a transient-error burst, a rate-limit spike, chronically slow
responses — as a seeded, JSON-round-trippable document.  The same
campaign runs twice: once fault-free, once through the storm behind
:class:`ResilientAPI` (retry + backoff + circuit breaker).  The parity
printout is the point: failures cost *simulated time*, never §2.4 query
money or row coverage, and the whole campaign replays bit-for-bit from
the plan's JSON.  A final act crashes a sharded-walk worker mid-round
and shows the recovered trajectories are identical to a crash-free run.

Run:  python examples/fault_injection.py
"""

import numpy as np

from repro.crawl import AsyncCrawler
from repro.faults import FaultPlan, FaultRule, FaultyAPI
from repro.graphs.generators import barabasi_albert_graph
from repro.osn import ResilientAPI, RetryPolicy
from repro.osn.api import SocialNetworkAPI
from repro.walks.parallel import ShardedWalkEngine
from repro.walks.transitions import SimpleRandomWalk

SEED = 42
LATENCY = [1.0, 0.25, 0.5, 2.0, 0.75]  # scripted per-batch network latency


def build_storm() -> FaultPlan:
    """Script the outage: every fault is a rule, every rule is data."""
    plan = FaultPlan(
        rules=(
            # Calls 2-4: the backend drops three responses in a row.
            FaultRule(kind="error", first_call=2, last_call=4),
            # Call 8: a rate-limit rejection with Retry-After: 20s.
            FaultRule(kind="rate_limit", delay=20.0, first_call=8, last_call=8),
            # From call 10 on: every response limps in ~2s late (jittered,
            # but seeded — the jitter replays).
            FaultRule(kind="slow", delay=2.0, jitter=0.3, first_call=10),
        ),
        seed=7,
    )
    document = plan.to_json(indent=2)
    print("The storm, as the wire document an SRE would check in:")
    print(document)
    # The document IS the plan: campaigns replay from the JSON alone.
    assert FaultPlan.from_json(document) == plan
    return plan


def crawl(hidden, plan=None):
    """One crawl campaign; with a plan, the storm rages behind retries."""
    api = SocialNetworkAPI(hidden)
    surface = api
    if plan is not None:
        policy = RetryPolicy(max_attempts=6, base_backoff=0.5, jitter=0.0)
        surface = ResilientAPI(FaultyAPI(api, plan), policy, seed=1)
    # concurrency=1 keeps batch *settlement order* identical under
    # faults, so row-order parity holds exactly; at higher concurrency a
    # retried batch can settle after its in-flight sibling (same rows,
    # same cost, different insertion order).
    crawler = AsyncCrawler(surface, 0, concurrency=1, latency=LATENCY)
    crawler.crawl()
    return api, surface, crawler


def chaos_parity(hidden, plan) -> None:
    reference_api, _, reference = crawl(hidden)
    chaos_api, resilient, chaos = crawl(hidden, plan)

    print("\n                      fault-free      chaos")
    print(
        f"rows discovered     {reference_api.discovered.fetched_count:>10}"
        f" {chaos_api.discovered.fetched_count:>10}"
    )
    print(
        f"query cost (2.4)    {reference_api.query_cost:>10}"
        f" {chaos_api.query_cost:>10}"
    )
    print(
        f"simulated seconds   {reference.clock.now:>10.2f}"
        f" {chaos.clock.now:>10.2f}"
    )
    print(f"faults injected     {'-':>10} {sum(resilient.api.injected.values()):>10}")
    print(f"retries             {'-':>10} {resilient.retries:>10}")

    assert chaos_api.query_cost == reference_api.query_cost
    assert list(chaos_api.discovered._rows) == list(reference_api.discovered._rows)
    print(
        "\nSame rows, same order, same §2.4 bill — the storm cost "
        f"{chaos.clock.now - reference.clock.now:.2f} simulated seconds "
        "and nothing else."
    )


def crash_recovery(hidden) -> None:
    starts = np.zeros(128, dtype=np.int64)
    with ShardedWalkEngine(hidden, n_workers=4, mp_context="fork") as engine:
        clean = engine.run_walk_batch(SimpleRandomWalk(), starts, 25, seed=SEED)
    with ShardedWalkEngine(hidden, n_workers=4, mp_context="fork") as engine:
        engine.schedule_worker_crash(1, 2)  # kill a worker mid-round
        crashed = engine.run_walk_batch(SimpleRandomWalk(), starts, 25, seed=SEED)
        print(
            f"\nWorker killed mid-round: {engine.worker_respawns} pool "
            f"respawn(s), {engine.shard_retries} shard(s) re-executed."
        )
    assert np.array_equal(crashed.paths, clean.paths)
    print(
        "Recovered trajectories are bit-identical to the crash-free "
        "round — per-shard seeding makes re-execution idempotent."
    )


def main() -> None:
    hidden = barabasi_albert_graph(600, 4, seed=SEED).relabeled()
    plan = build_storm()
    chaos_parity(hidden, plan)
    crash_recovery(hidden)


if __name__ == "__main__":
    main()
