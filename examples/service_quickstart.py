"""Two tenants, one discovered graph: the sampling service in 60 lines.

The §2.4 economics in action: every row Alice's crawl driver pays for is
cached in the shared :class:`DiscoveredGraph`, so Bob's concurrent job
rides the same topology and the pair together spend far fewer unique-node
queries than two isolated runs.  Both jobs go through the unified
``repro.core.estimate`` dispatcher — the service is just an asyncio epoch
loop multiplexing it.

Everything runs on a ``FakeClock``, so this script is deterministic: run
it twice and every estimate, charge, and timestamp is identical.

Run:  python examples/service_quickstart.py
"""

from repro import SocialNetworkAPI, WalkEstimateConfig
from repro.core import EngineConfig, EstimationJobSpec
from repro.datasets import ba_synthetic
from repro.service import SamplingService, ServiceConfig

SEED = 7

WALK = WalkEstimateConfig(
    walk_length=6,
    crawl_hops=0,
    backward_repetitions=4,
    refine_repetitions=0,
    calibration_walks=5,
)


def tenant_job(tenant: str, budget: int) -> EstimationJobSpec:
    return EstimationJobSpec(
        design="srw",
        samples=30,
        error_target=0.8,
        query_budget=budget,
        tenant=tenant,
        walk=WALK,
        engine=EngineConfig(backend="batch"),
    )


def main() -> None:
    graph = ba_synthetic(nodes=400, m=4, seed=SEED).graph.relabeled()
    api = SocialNetworkAPI(graph)
    service = SamplingService(
        api,
        start=0,
        config=ServiceConfig(rows_per_epoch=40),
        latency=[1.0, 0.25, 0.5, 2.0],
        seed=SEED,
    )

    with service:
        results = service.run(
            [tenant_job("alice", budget=150), tenant_job("bob", budget=150)]
        )

        print("== job results ==")
        for result in results:
            print(
                f"  {result.tenant:6s} {result.state.value:10s} "
                f"estimate={result.estimate:6.3f} +/- {result.stderr:.3f}  "
                f"rounds={result.rounds}  reason={result.reason}"
            )

        print("\n== who paid for the shared graph ==")
        for tenant, charge in sorted(service.ledger.charges().items()):
            print(f"  {tenant:6s} {charge:4d} unique-node queries")
        service.ledger.assert_balanced()
        print(f"  total  {api.query_cost:4d}  (= global QueryCounter charge)")

        streamed = service.metrics.partials_streamed.value
        print("\n== service counters ==")
        print(f"  epochs published   {service.metrics.epochs_published.value}")
        print(f"  rounds run         {service.metrics.rounds.value}")
        print(f"  partials streamed  {streamed}")
        print(f"  cache hit rate     {service.metrics.cache_hit_rate.value:.2%}")


if __name__ == "__main__":
    main()
