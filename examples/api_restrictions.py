"""Sampling under real-world API restrictions (paper §6.3.1).

Real OSN endpoints rarely return full neighbor lists.  This example runs
the same SRW sampling campaign under the paper's three restriction types —
fresh-random-k, fixed-random-k, and truncated-first-l — first naively, then
with the remediation the paper prescribes for each:

* type 1 (fresh random subsets): movement is already unbiased, but the
  visible degree is not the true degree — weight samples by
  **mark-and-recapture** degree estimates instead;
* types 2/3 (call-stable subsets): the visible edge relation is asymmetric,
  so walk only edges that pass the **bidirectional check**.

It closes with the Twitter-style rate limit on a virtual clock — the "wait"
the paper's title refers to.

Run:  python examples/api_restrictions.py
"""

from repro import SimpleRandomWalk, SocialNetworkAPI
from repro.datasets import ba_synthetic
from repro.estimators.aggregates import average_estimate
from repro.estimators.metrics import relative_error
from repro.osn import (
    FixedRandomKRestriction,
    RandomKRestriction,
    TokenBucketRateLimiter,
    TruncatedKRestriction,
    VirtualClock,
    mark_recapture_degree,
    mutual_neighbors,
)
from repro.walks import BidirectionalWalk, BurnInSampler
from repro.walks.transitions import NeighborView, Node

SEED = 33
K = 8        # visible-neighbor cap for each restriction type
SAMPLES = 60


class MarkRecaptureSRW(SimpleRandomWalk):
    """SRW weighting samples by mark-recapture degree estimates."""

    name = "srw-markrecapture"

    def target_weight(self, view: NeighborView, node: Node) -> float:
        return mark_recapture_degree(view, node, rounds=4)


def main() -> None:
    dataset = ba_synthetic(nodes=1500, m=6, seed=SEED)
    graph = dataset.graph
    truth = dataset.aggregates["degree"]
    print(f"hidden graph: {graph}; true AVG degree {truth:.2f}\n")

    cases = [
        ("unrestricted, SRW", None, SimpleRandomWalk()),
        (f"type1 random-{K}, naive SRW", RandomKRestriction(K, seed=SEED),
         SimpleRandomWalk()),
        (f"type1 random-{K}, mark-recapture", RandomKRestriction(K, seed=SEED),
         MarkRecaptureSRW()),
        (f"type2 fixed-{K}, naive SRW", FixedRandomKRestriction(K, seed=SEED),
         SimpleRandomWalk()),
        (f"type2 fixed-{K}, bidirectional", FixedRandomKRestriction(K, seed=SEED),
         BidirectionalWalk()),
        (f"type3 first-{K}, naive SRW", TruncatedKRestriction(K),
         SimpleRandomWalk()),
        (f"type3 first-{K}, bidirectional", TruncatedKRestriction(K),
         BidirectionalWalk()),
    ]
    print(f"{'restriction, walk':36s} {'samples':>8s} {'queries':>8s} "
          f"{'AVG degree':>11s} {'rel err':>8s}")
    for label, restriction, design in cases:
        api = SocialNetworkAPI(graph, restriction=restriction)
        batch = BurnInSampler(design).sample(api, start=0, count=SAMPLES, seed=SEED)
        # The profile attribute carries the true degree (like a follower
        # count on the profile page), so the aggregate stays estimable even
        # when the neighbor list is truncated.
        values = [graph.get_attribute("degree", node) for node in batch.nodes]
        estimate = average_estimate(batch, values)
        error = relative_error(estimate, truth)
        print(f"{label:36s} {len(batch):8d} {api.query_cost:8d} "
              f"{estimate:11.2f} {error:8.3f}")

    # The bidirectional check in isolation: costs queries, buys symmetry.
    api = SocialNetworkAPI(graph, restriction=TruncatedKRestriction(K))
    visible = api.neighbors(0)
    mutual = mutual_neighbors(api, 0)
    print(f"\nbidirectional check at node 0: {len(visible)} visible, "
          f"{len(mutual)} mutual (cost {api.query_cost} queries)")

    # Rate limit: Twitter's 15 requests / 15 minutes, on a virtual clock.
    clock = VirtualClock()
    limiter = TokenBucketRateLimiter(capacity=15, period_seconds=900, clock=clock)
    api = SocialNetworkAPI(graph, rate_limiter=limiter)
    batch = BurnInSampler(SimpleRandomWalk(), max_steps=300).sample(
        api, start=0, count=2, seed=SEED
    )
    hours = clock.now / 3600.0
    print(f"\nwith a 15-per-15-min rate limit, {api.raw_calls} API calls for "
          f"{len(batch)} samples take {hours:.1f} simulated hours — "
          "the 'wait' the paper's title is about.")


if __name__ == "__main__":
    main()
