"""Why ESTIMATE needs its two heuristics (paper §5).

UNBIASED-ESTIMATE is already unbiased — the problem is variance.  This
example estimates one node's sampling probability ``p_t(u)`` a few hundred
times with each estimator variant and prints the spread, then shows the
end-to-end effect: the four WE variants (WE-None / WE-Crawl / WE-Weighted /
WE) sampling the same graph under the same budget.

Run:  python examples/ablation_variance_reduction.py
"""

import numpy as np

from repro import (
    QueryBudget,
    SimpleRandomWalk,
    SocialNetworkAPI,
    WalkEstimateConfig,
    we_crawl_sampler,
    we_full_sampler,
    we_none_sampler,
    we_weighted_sampler,
)
from repro.core import ForwardHistory, InitialCrawl, unbiased_estimate
from repro.core.weighted import weighted_backward_estimate
from repro.datasets import ba_synthetic
from repro.estimators.aggregates import average_estimate
from repro.estimators.metrics import relative_error
from repro.markov.matrix import TransitionMatrix
from repro.rng import ensure_rng
from repro.walks.walker import run_walk

SEED = 42
T = 8  # forward walk length being estimated


def estimator_spread() -> None:
    graph = ba_synthetic(nodes=300, m=4, seed=SEED).graph
    design = SimpleRandomWalk()
    start = 0
    matrix = TransitionMatrix(graph, design)
    p_t = matrix.step_distribution(start, T)
    node = int(np.argsort(p_t)[len(p_t) // 2])
    exact = p_t[node]
    rng = ensure_rng(SEED)

    crawl = InitialCrawl(SocialNetworkAPI(graph), design, start, hops=2)
    history = ForwardHistory(start, T)
    for _ in range(50):
        history.record(run_walk(graph, design, start, T, seed=rng))

    variants = {
        "UNBIASED-ESTIMATE": lambda: unbiased_estimate(
            graph, design, node, start, T, seed=rng
        ),
        "+ weighted (WS-BW)": lambda: weighted_backward_estimate(
            graph, design, node, start, T, history=history, seed=rng
        ),
        "+ initial crawl": lambda: unbiased_estimate(
            graph, design, node, start, T, seed=rng, crawl=crawl
        ),
        "+ both (ESTIMATE)": lambda: weighted_backward_estimate(
            graph, design, node, start, T, history=history, crawl=crawl, seed=rng
        ),
    }
    print(f"estimating p_{T}(node {node}); exact value {exact:.6f}")
    print(f"{'estimator':20s} {'mean':>10s} {'std':>10s}")
    for label, draw in variants.items():
        values = np.array([draw() for _ in range(500)])
        print(f"{label:20s} {values.mean():10.6f} {values.std():10.6f}")
    print()


def end_to_end() -> None:
    dataset = ba_synthetic(nodes=3000, m=6, seed=SEED)
    graph = dataset.graph
    truth = dataset.aggregates["degree"]
    design = SimpleRandomWalk()
    config = WalkEstimateConfig(diameter_hint=5, crawl_hops=2)
    factories = {
        "WE-None": we_none_sampler,
        "WE-Crawl": we_crawl_sampler,
        "WE-Weighted": we_weighted_sampler,
        "WE (both)": we_full_sampler,
    }
    # An ordinary low-degree start: crawling 2 hops around a hub would
    # dominate the budget and mask the variance-reduction comparison.
    start = graph.nodes()[-1]
    repeats = 5
    print(f"end-to-end on {graph}: AVG degree, budget 2000 queries, "
          f"mean of {repeats} runs")
    print(f"{'variant':12s} {'samples':>8s} {'rel err':>8s}")
    for label, factory in factories.items():
        errors, sample_counts = [], []
        for run in range(repeats):
            api = SocialNetworkAPI(graph, budget=QueryBudget(2000))
            sampler = factory(design, config)
            batch = sampler.sample(api, start=start, count=150, seed=SEED + run)
            if len(batch) == 0:
                errors.append(1.0)
                sample_counts.append(0)
                continue
            values = [graph.get_attribute("degree", node) for node in batch.nodes]
            errors.append(relative_error(average_estimate(batch, values), truth))
            sample_counts.append(len(batch))
        print(f"{label:12s} {np.mean(sample_counts):8.1f} {np.mean(errors):8.3f}")


if __name__ == "__main__":
    estimator_spread()
    end_to_end()
