"""Walk a graph while you are still crawling it.

The async crawl pipeline applies the paper's "walk, not wait" premise to
the crawl phase itself: an AsyncCrawler keeps several neighbor-list
fetches in flight against the charged API, a TopologyPublisher
periodically compacts everything discovered so far into a fresh
shared-memory CSR slab, and a sharded walk engine runs estimation rounds
over each published epoch — so the estimate refines while the network is
still answering, instead of waiting for the crawl to finish.

All waiting happens on a simulated clock (scripted per-batch latency plus
rate-limit waits), so the run is deterministic and the wall-clock numbers
below are reproducible bit for bit.

Run:  PYTHONPATH=src python examples/async_crawl_pipeline.py
"""

from repro.core.config import CrawlPipelineConfig
from repro.crawl import CrawlWalkPipeline, FakeClock
from repro.graphs.generators import barabasi_albert_graph
from repro.osn.api import SocialNetworkAPI
from repro.osn.ratelimit import TokenBucketRateLimiter


def run_campaign(concurrency: int) -> None:
    hidden = barabasi_albert_graph(800, 4, seed=7).relabeled()
    true_value = 2 * hidden.number_of_edges() / hidden.number_of_nodes()
    api = SocialNetworkAPI(
        hidden,
        # Twitter-flavored: 60 neighbor-list requests per minute.  Rate
        # waits mirror onto the crawl clock per in-flight slot, i.e. the
        # crawler behaves like one credential per connection; see the
        # AsyncCrawler docstring for the single-account reading.
        rate_limiter=TokenBucketRateLimiter(60, 60.0),
    )
    clock = FakeClock()
    config = CrawlPipelineConfig(
        concurrency=concurrency,
        batch_size=16,
        rows_per_epoch=160,
        walks_per_epoch=128,
        steps_per_walk=50,
    )
    print(f"--- concurrency={concurrency} ---")
    with CrawlWalkPipeline(
        api,
        0,
        config=config,
        n_workers=1,
        clock=clock,
        latency=[0.8, 0.3, 1.2, 0.5],  # scripted per-batch network latency
        seed=42,
    ) as pipeline:
        result = pipeline.run()
    print(f"{'epoch':>5} {'rows':>5} {'walked':>6} {'estimate':>9} {'sim-s':>8}")
    for record in result.epochs:
        print(
            f"{record.epoch:>5} {record.fetched_nodes:>5} "
            f"{record.walk_nodes:>6} {record.estimate:>9.3f} "
            f"{record.clock_seconds:>8.1f}"
        )
    print(
        f"true average degree {true_value:.3f}; paid {result.query_cost} "
        f"queries; campaign took {result.simulated_seconds:.1f} simulated "
        f"seconds\n"
    )


def main() -> None:
    # Same campaign, same query cost — the only difference is how much of
    # the network latency the crawler overlaps.
    run_campaign(concurrency=1)
    run_campaign(concurrency=6)


if __name__ == "__main__":
    main()
