"""A tour of every sampler in the repository, on one hidden graph.

Runs each node sampler the library implements — crawl-order baselines,
classical random walks, the related-work alternatives, and WALK-ESTIMATE in
both its short-runs and one-long-run (§6.1 future work) forms — under the
same query budget, and reports the average-degree estimate each produces
with a bootstrap confidence interval.

Run:  python examples/sampler_tour.py
"""

from repro import (
    QueryBudget,
    SimpleRandomWalk,
    SocialNetworkAPI,
    WalkEstimateConfig,
    we_full_sampler,
)
from repro.core import LongRunWalkEstimateSampler
from repro.datasets import ba_synthetic
from repro.estimators.intervals import bootstrap_interval
from repro.estimators.metrics import relative_error
from repro.walks import (
    BFSSampler,
    BurnInSampler,
    DFSSampler,
    FrontierSampler,
    LongRunSampler,
    MetropolisHastingsWalk,
    NonBacktrackingSampler,
    SnowballSampler,
)

SEED = 17
BUDGET = 2000
COUNT = 150


def main() -> None:
    dataset = ba_synthetic(nodes=3000, m=6, seed=SEED)
    graph = dataset.graph
    truth = dataset.aggregates["degree"]
    start = graph.nodes()[-1]  # an ordinary low-degree user
    print(f"hidden graph: {graph}; true AVG degree {truth:.2f}")
    print(f"budget {BUDGET} unique queries per sampler\n")

    config = WalkEstimateConfig(diameter_hint=5, crawl_hops=2)
    samplers = {
        "BFS crawl": BFSSampler(),
        "DFS crawl": DFSSampler(),
        "snowball(3)": SnowballSampler(fanout=3),
        "SRW + burn-in": BurnInSampler(SimpleRandomWalk()),
        "MHRW + burn-in": BurnInSampler(MetropolisHastingsWalk()),
        "NBRW + burn-in": NonBacktrackingSampler(),
        "one long run (SRW)": LongRunSampler(SimpleRandomWalk(), burn_in_steps=150),
        "frontier (m=8)": FrontierSampler(dimension=8, burn_in_steps=50),
        "WALK-ESTIMATE": we_full_sampler(SimpleRandomWalk(), config),
        "WE one-long-run": LongRunWalkEstimateSampler(SimpleRandomWalk(), config),
    }
    print(f"{'sampler':20s} {'samples':>8s} {'estimate':>9s} "
          f"{'95% CI':>17s} {'rel err':>8s}")
    for label, sampler in samplers.items():
        api = SocialNetworkAPI(graph, budget=QueryBudget(BUDGET))
        batch = sampler.sample(api, start, count=COUNT, seed=SEED)
        if len(batch) < 2:
            print(f"{label:20s} {len(batch):8d} {'-':>9s} {'-':>17s} {'-':>8s}")
            continue
        values = [graph.get_attribute("degree", node) for node in batch.nodes]
        ci = bootstrap_interval(batch, values, seed=SEED)
        error = relative_error(ci.estimate, truth)
        print(f"{label:20s} {len(batch):8d} {ci.estimate:9.2f} "
              f"[{ci.lower:6.2f}, {ci.upper:6.2f}] {error:8.3f}")
    print(
        "\nReading: crawl-order samplers concentrate near the start and"
        "\noverestimate badly; every walk-based sampler de-biases.  Their"
        "\ncosts differ: burn-in walks buy few (independent) samples, long"
        "\nruns buy many (correlated) ones, and WALK-ESTIMATE buys"
        "\nindependent samples cheaply once its calibration is amortized —"
        "\nrun the figure6 experiment for the systematic comparison."
    )


if __name__ == "__main__":
    main()
