"""Quickstart for the vectorized batch engine: compile once, walk wide.

Shows the full batch pipeline on an in-memory surrogate graph:

1. freeze the graph into CSR form with ``Graph.compile()``;
2. launch K forward walks at once with ``run_walk_batch`` and compare
   wall-clock against the one-at-a-time scalar walker;
3. run a vectorized WALK-ESTIMATE round (``walk_estimate_batch``) and feed
   its sample arrays straight into the array-native AVG estimator.

The scalar engine (``run_walk`` + ``SocialNetworkAPI``) remains the right
tool when *query cost* is the metric; the batch engine is for when the
graph is free and *walks per second* is the metric.

Run:  python examples/batch_throughput.py
"""

import time

import numpy as np

from repro import (
    SimpleRandomWalk,
    WalkEstimateConfig,
    run_walk_batch,
    walk_estimate_batch,
)
from repro.datasets import google_plus_surrogate
from repro.estimators.aggregates import average_estimate_arrays
from repro.estimators.metrics import relative_error
from repro.walks.walker import run_walk

SEED = 7
STEPS = 100  # forward-walk length
K = 1024  # batch width


def main() -> None:
    dataset = google_plus_surrogate(nodes=4000, m=12, seed=SEED)
    graph = dataset.graph
    truth = dataset.aggregates["degree"]
    print(f"graph: {graph}")

    # --- compile once: Graph -> CSRGraph ---------------------------------
    csr = graph.compile()
    print(f"compiled: {csr}\n")

    design = SimpleRandomWalk()

    # --- scalar engine: K walks, one at a time ---------------------------
    begin = time.perf_counter()
    ends = [run_walk(graph, design, 0, STEPS, seed=SEED + i).end for i in range(256)]
    scalar_secs = time.perf_counter() - begin
    scalar_rate = 256 * STEPS / scalar_secs
    print(f"scalar : 256 walks x {STEPS} steps  {scalar_rate:12,.0f} steps/sec")

    # --- batch engine: K walks per array operation -----------------------
    begin = time.perf_counter()
    result = run_walk_batch(csr, design, np.zeros(K, dtype=np.int64), STEPS, seed=SEED)
    batch_secs = time.perf_counter() - begin
    batch_rate = K * STEPS / batch_secs
    print(f"batch  : {K} walks x {STEPS} steps  {batch_rate:12,.0f} steps/sec")
    print(
        f"speedup: {batch_rate / scalar_rate:.1f}x  (ends: {len(set(ends))} "
        f"distinct scalar, {len(np.unique(result.ends))} distinct batch)\n"
    )

    # --- vectorized WALK-ESTIMATE + array fan-in -------------------------
    we = walk_estimate_batch(
        csr,
        design,
        start=0,
        k_walks=K,
        config=WalkEstimateConfig(diameter_hint=4),
        seed=SEED,
    )
    degrees = csr.degrees[csr.positions_of(we.nodes)].astype(float)
    estimate = average_estimate_arrays(degrees, we.weights)
    print(
        f"walk_estimate_batch: {we.nodes.size} samples accepted of {K} "
        f"(rate {we.acceptance_rate:.2f})"
    )
    print(
        f"AVG degree ~ {estimate:.2f}  true {truth:.2f}  "
        f"(rel. error {relative_error(estimate, truth):.3f})"
    )


if __name__ == "__main__":
    main()
