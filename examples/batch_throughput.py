"""Quickstart for the vectorized batch engine: compile once, walk wide.

Shows the full batch pipeline on an in-memory surrogate graph:

1. freeze the graph into CSR form with ``Graph.compile()``;
2. launch K forward walks at once with ``run_walk_batch`` and compare
   wall-clock against the one-at-a-time scalar walker — for **every**
   design with a batch kernel (SRW, MHRW, LazyWalk, MaxDegreeWalk);
3. diagnose the whole batch's convergence from one attribute matrix
   (``diagnose_walk_batch``: per-walk Geweke + ESS, cross-walk PSRF);
4. run a vectorized WALK-ESTIMATE round (``walk_estimate_batch``) and feed
   its sample arrays straight into the array-native AVG estimator.

The scalar engine (``run_walk`` + ``SocialNetworkAPI``) remains the right
tool when *query cost* is the metric; the batch engine is for when the
graph is free and *walks per second* is the metric.

Run:  python examples/batch_throughput.py
"""

import time

import numpy as np

from repro import (
    LazyWalk,
    MaxDegreeWalk,
    MetropolisHastingsWalk,
    SimpleRandomWalk,
    WalkEstimateConfig,
    run_walk_batch,
    walk_estimate_batch,
)
from repro.datasets import google_plus_surrogate
from repro.estimators.aggregates import average_estimate_arrays
from repro.estimators.metrics import relative_error
from repro.walks.batch import walk_attribute_matrix
from repro.walks.convergence import diagnose_walk_batch
from repro.walks.walker import run_walk

SEED = 7
STEPS = 100  # forward-walk length
K = 1024  # batch width


def main() -> None:
    dataset = google_plus_surrogate(nodes=4000, m=12, seed=SEED)
    graph = dataset.graph
    truth = dataset.aggregates["degree"]
    print(f"graph: {graph}")

    # --- compile once: Graph -> CSRGraph ---------------------------------
    csr = graph.compile()
    print(f"compiled: {csr}\n")

    design = SimpleRandomWalk()

    # --- scalar vs. batch, one row per batch-kernel design ---------------
    designs = {
        "srw": design,
        "mhrw": MetropolisHastingsWalk(),
        "lazy-srw": LazyWalk(SimpleRandomWalk(), 0.5),
        "maxdeg": MaxDegreeWalk(graph.max_degree()),
    }
    print(f"{'design':>9}  {'scalar steps/sec':>17}  {'batch steps/sec':>16}  speedup")
    for name, d in designs.items():
        begin = time.perf_counter()
        for i in range(256):
            run_walk(graph, d, 0, STEPS, seed=SEED + i)
        scalar_rate = 256 * STEPS / (time.perf_counter() - begin)
        begin = time.perf_counter()
        result = run_walk_batch(csr, d, np.zeros(K, dtype=np.int64), STEPS, seed=SEED)
        batch_rate = K * STEPS / (time.perf_counter() - begin)
        print(
            f"{name:>9}  {scalar_rate:17,.0f}  {batch_rate:16,.0f}  "
            f"{batch_rate / scalar_rate:6.1f}x"
        )
    print()

    # --- array-native convergence diagnosis of the last batch ------------
    matrix = walk_attribute_matrix(csr, result)
    report = diagnose_walk_batch(matrix)
    print(
        f"diagnostics ({matrix.shape[0]} walks x {matrix.shape[1]} degrees): "
        f"geweke pass {report.geweke.converged_fraction:.0%}, "
        f"PSRF {report.psrf:.3f}, total ESS {report.total_ess:,.0f}\n"
    )

    # --- vectorized WALK-ESTIMATE + array fan-in -------------------------
    we = walk_estimate_batch(
        csr,
        design,
        start=0,
        k_walks=K,
        config=WalkEstimateConfig(diameter_hint=4),
        seed=SEED,
    )
    degrees = csr.degrees[csr.positions_of(we.nodes)].astype(float)
    estimate = average_estimate_arrays(degrees, we.weights)
    print(
        f"walk_estimate_batch: {we.nodes.size} samples accepted of {K} "
        f"(rate {we.acceptance_rate:.2f})"
    )
    print(
        f"AVG degree ~ {estimate:.2f}  true {truth:.2f}  "
        f"(rel. error {relative_error(estimate, truth):.3f})"
    )


if __name__ == "__main__":
    main()
